package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"isex/internal/core"
	"isex/internal/dfg"
	"isex/internal/workload"
)

// This file measures the word-parallel constraint kernel of internal/dfg
// against the specification predicates it replaced, on the paper's
// flagship workload (the adpcmdecode hot block), and serializes the
// numbers as a machine-readable report. The isebench command writes the
// report to BENCH_PR2.json so the repository carries a comparable perf
// trajectory from PR to PR; CI regenerates it per change.

// KernelBenchEntry is one measured benchmark.
type KernelBenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SpeedupVsSpec is ns/op(spec) ÷ ns/op(bitset), set on the bitset
	// rows that have a spec twin.
	SpeedupVsSpec float64 `json:"speedup_vs_spec,omitempty"`
	// CutsPerSec is search throughput (cuts considered per second), set
	// on the end-to-end search rows.
	CutsPerSec float64 `json:"cuts_per_sec,omitempty"`
	// Status and Aborted report how the end-to-end search ended; empty on
	// the constraint-predicate rows, which run no search.
	Status  string `json:"status,omitempty"`
	Aborted bool   `json:"aborted,omitempty"`
}

// KernelBenchReport is the BENCH_PR2.json payload.
type KernelBenchReport struct {
	Schema    string             `json:"schema"`
	Generated string             `json:"generated"`
	GoVersion string             `json:"go"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	Block     string             `json:"block"`
	BlockOps  int                `json:"block_ops"`
	CutSize   int                `json:"cut_size"`
	Entries   []KernelBenchEntry `json:"entries"`
}

// hotAdpcmGraph returns the largest adpcmdecode block — the graph the
// paper's §8 run-time discussion revolves around.
func hotAdpcmGraph() (*dfg.Graph, string, error) {
	graphs, err := workload.RealBlockGraphs()
	if err != nil {
		return nil, "", err
	}
	var hot *workload.BlockInfo
	for i := range graphs {
		if graphs[i].Kernel == "adpcmdecode" && (hot == nil || graphs[i].Graph.NumOps() > hot.Graph.NumOps()) {
			hot = &graphs[i]
		}
	}
	if hot == nil {
		return nil, "", fmt.Errorf("experiments: no adpcmdecode block found")
	}
	return hot.Graph, hot.Fn + "/" + hot.Block, nil
}

// KernelBenchCut returns the representative cut the kernel benches
// measure against: the §9 windowed heuristic's best (2,1) cut on the
// given graph — deterministic, cheap to find, and realistically sized.
func KernelBenchCut(g *dfg.Graph) dfg.Cut {
	return core.FindBestCutWindowed(g, core.Config{Nin: 2, Nout: 1}, 12).Cut
}

// KernelBench measures the constraint kernel (specification predicates
// vs the word-parallel bitset implementations, plus end-to-end search
// throughput) and returns the report.
func KernelBench() (*KernelBenchReport, error) {
	g, name, err := hotAdpcmGraph()
	if err != nil {
		return nil, err
	}
	cut := KernelBenchCut(g)
	if len(cut) == 0 {
		return nil, fmt.Errorf("experiments: windowed search found no cut on %s", name)
	}
	rep := &KernelBenchReport{
		Schema:    "isex-kernel-bench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Block:     name,
		BlockOps:  g.NumOps(),
		CutSize:   len(cut),
	}

	add := func(name string, fn func(b *testing.B)) KernelBenchEntry {
		r := testing.Benchmark(fn)
		e := KernelBenchEntry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Entries = append(rep.Entries, e)
		return e
	}
	pair := func(name string, spec, fast func()) {
		s := add(name+"/spec", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spec()
			}
		})
		f := add(name+"/bitset", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fast()
			}
		})
		if f.NsPerOp > 0 {
			rep.Entries[len(rep.Entries)-1].SpeedupVsSpec = s.NsPerOp / f.NsPerOp
		}
	}

	pair("Inputs", func() { g.InputsSpec(cut) }, func() { g.Inputs(cut) })
	pair("Outputs", func() { g.OutputsSpec(cut) }, func() { g.Outputs(cut) })
	pair("Convex", func() { g.ConvexSpec(cut) }, func() { g.Convex(cut) })
	pair("Legal", func() { g.LegalSpec(cut, 2, 1) }, func() { g.Legal(cut, 2, 1) })
	pair("Components", func() { g.ComponentsSpec(cut) }, func() { g.Components(cut) })

	// End-to-end: the exact (2,1) search on the hot block, reported as
	// cuts/sec — the number the §8 run-time discussion is about.
	var last core.Result
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			last = core.FindBestCut(g, core.Config{Nin: 2, Nout: 1})
		}
	})
	cuts := last.Stats.CutsConsidered
	e := KernelBenchEntry{
		Name:        "FindBestCut(2,1)",
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Status:      last.Status.String(),
		Aborted:     last.Stats.Aborted,
	}
	if r.T > 0 {
		e.CutsPerSec = float64(cuts) * float64(r.N) / r.T.Seconds()
	}
	rep.Entries = append(rep.Entries, e)
	return rep, nil
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *KernelBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// KernelBenchTable renders the report for terminal output.
func KernelBenchTable(r *KernelBenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Constraint-kernel benchmark — %s (%d ops, cut size %d), %s %s/%s\n\n",
		r.Block, r.BlockOps, r.CutSize, r.GoVersion, r.GOOS, r.GOARCH)
	fmt.Fprintf(&sb, "%-20s %14s %12s %12s %10s %14s\n",
		"benchmark", "ns/op", "B/op", "allocs/op", "speedup", "cuts/sec")
	for _, e := range r.Entries {
		speed, cps := "", ""
		if e.SpeedupVsSpec > 0 {
			speed = fmt.Sprintf("%.1fx", e.SpeedupVsSpec)
		}
		if e.CutsPerSec > 0 {
			cps = fmt.Sprintf("%.3g", e.CutsPerSec)
		}
		fmt.Fprintf(&sb, "%-20s %14.1f %12d %12d %10s %14s\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, speed, cps)
	}
	return sb.String()
}
