// Package workload provides the benchmark programs of the evaluation.
// The paper runs on a subset of MediaBench compiled with SUIF; those C
// sources are transliterated here into MiniC kernels with the same
// operation mix and basic-block structure (see DESIGN.md §4 for the
// substitution argument). Each kernel carries a driver entry point, a
// deterministic input generator and the list of output globals used for
// correctness checks.
package workload

import (
	"fmt"

	"isex/internal/interp"
	"isex/internal/ir"
	"isex/internal/minic"
	"isex/internal/passes"
)

// Kernel is one benchmark program.
type Kernel struct {
	Name   string
	Source string
	// Entry is the function the driver calls (with Args) to execute the
	// kernel once.
	Entry string
	Args  []int32
	// Inputs maps global names to deterministic input data installed
	// before each run.
	Inputs map[string][]int32
	// Outputs lists the globals holding results (compared in tests and
	// after ISE patching).
	Outputs []string
	// Unroll is the per-kernel loop unrolling limit handed to the front
	// end (0 = none); the paper's large blocks come from if-conversion
	// alone, but the Fig. 8 sweep also wants bigger blocks (§9 names
	// unrolling as the standard way to get them).
	Unroll int
}

// Build compiles the kernel and runs the preprocessing pipeline
// (if-conversion and scalar cleanups).
func (k *Kernel) Build() (*ir.Module, error) {
	m, err := minic.Compile(k.Source, minic.Options{UnrollLimit: k.Unroll})
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", k.Name, err)
	}
	if err := passes.Run(m, passes.Options{}); err != nil {
		return nil, fmt.Errorf("workload %s: %w", k.Name, err)
	}
	return m, nil
}

// NewEnv creates an execution environment with the kernel's inputs
// installed.
func (k *Kernel) NewEnv(m *ir.Module) (*interp.Env, error) {
	env := interp.NewEnv(m)
	for name, vals := range k.Inputs {
		if err := env.SetGlobal(name, vals); err != nil {
			return nil, fmt.Errorf("workload %s: %w", k.Name, err)
		}
	}
	return env, nil
}

// Run executes the kernel once in a fresh environment and returns the
// environment for output inspection.
func (k *Kernel) Run(m *ir.Module) (*interp.Env, error) {
	env, err := k.NewEnv(m)
	if err != nil {
		return nil, err
	}
	if _, _, err := env.Call(k.Entry, k.Args...); err != nil {
		return nil, fmt.Errorf("workload %s: %w", k.Name, err)
	}
	return env, nil
}

// Prepare builds the kernel and profiles it (block frequencies filled),
// ready for identification.
func (k *Kernel) Prepare() (*ir.Module, error) {
	m, err := k.Build()
	if err != nil {
		return nil, err
	}
	env, err := k.NewEnv(m)
	if err != nil {
		return nil, err
	}
	env.Profile = true
	if _, _, err := env.Call(k.Entry, k.Args...); err != nil {
		return nil, fmt.Errorf("workload %s: profiling run: %w", k.Name, err)
	}
	return m, nil
}

// OutputImage runs the kernel and captures all output globals.
func (k *Kernel) OutputImage(m *ir.Module) (map[string][]int32, error) {
	env, err := k.Run(m)
	if err != nil {
		return nil, err
	}
	out := map[string][]int32{}
	for _, name := range k.Outputs {
		s, err := env.GlobalSlice(name)
		if err != nil {
			return nil, err
		}
		out[name] = append([]int32(nil), s...)
	}
	return out, nil
}

// All returns every kernel of the suite. The first three are the Fig. 11
// benchmarks; the rest widen the Fig. 8 block-size population.
func All() []*Kernel {
	return []*Kernel{
		AdpcmDecode(),
		AdpcmEncode(),
		GSMLPC(),
		FIR(),
		Viterbi(),
		CRC32(),
		SHA1Round(),
		FFT(),
		G721(),
		DCT(),
		SAD(),
		VLC(),
	}
}

// ByName returns the named kernel or nil.
func ByName(name string) *Kernel {
	for _, k := range All() {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// testSignal produces a deterministic pseudo-random waveform in
// [-amp, amp]; it stands in for the audio/bitstream inputs of MediaBench.
func testSignal(n int, seed uint64, amp int32) []int32 {
	out := make([]int32, n)
	s := seed*6364136223846793005 + 1442695040888963407
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v := int32(s % uint64(2*amp+1))
		out[i] = v - amp
	}
	return out
}
