package ir

import (
	"strings"
	"testing"
)

// buildDiamond builds: entry -> (then|else) -> exit, computing
// ret = cond ? a+b : a-b for params (cond, a, b).
func buildDiamond(t *testing.T) *Function {
	t.Helper()
	b := NewBuilder("diamond", 3)
	cond, a, x := b.Fn.Params[0], b.Fn.Params[1], b.Fn.Params[2]
	res := b.Fn.NewReg()
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	exit := b.NewBlock("exit")
	b.Branch(cond, then, els)
	b.SetBlock(then)
	b.CopyTo(res, b.Op(OpAdd, a, x))
	b.Jump(exit)
	b.SetBlock(els)
	b.CopyTo(res, b.Op(OpSub, a, x))
	b.Jump(exit)
	b.SetBlock(exit)
	b.Ret(res)
	return b.Finish()
}

func TestBuilderAndVerify(t *testing.T) {
	f := buildDiamond(t)
	if err := VerifyFunction(f, nil); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(f.Blocks))
	}
	entry := f.Entry()
	if entry.Term.Kind != TermBranch || len(entry.Succs()) != 2 {
		t.Fatalf("entry terminator wrong: %v", entry.Term)
	}
	exit := f.Blocks[3]
	if len(exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2", len(exit.Preds))
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(f *Function)
	}{
		{"bad arg reg", func(f *Function) { f.Blocks[1].Instrs[0].Args[0] = Reg(999) }},
		{"negative reg", func(f *Function) { f.Blocks[1].Instrs[0].Args[0] = -2 }},
		{"bad arity", func(f *Function) { f.Blocks[1].Instrs[0].Args = f.Blocks[1].Instrs[0].Args[:1] }},
		{"no dst", func(f *Function) { f.Blocks[1].Instrs[0].Dsts = nil }},
		{"invalid op", func(f *Function) { f.Blocks[1].Instrs[0].Op = OpInvalid }},
		{"missing term", func(f *Function) { f.Blocks[1].Term = Term{} }},
		{"stale index", func(f *Function) { f.Blocks[2].Index = 0 }},
		{"foreign target", func(f *Function) {
			other := &Block{Name: "foreign"}
			f.Blocks[1].Term.Targets[0] = other
		}},
		{"bad cond reg", func(f *Function) { f.Blocks[0].Term.Cond = 999 }},
		{"bad ret reg", func(f *Function) { f.Blocks[3].Term.Val = -5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := buildDiamond(t)
			tc.mut(f)
			if err := VerifyFunction(f, nil); err == nil {
				t.Errorf("verify accepted corrupt function (%s)", tc.name)
			}
		})
	}
}

func TestVerifyModule(t *testing.T) {
	f := buildDiamond(t)
	m := &Module{Funcs: []*Function{f}, Globals: []Global{{Name: "tab", Size: 4, Init: []int32{1, 2}}}}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify module: %v", err)
	}
	m2 := &Module{Globals: []Global{{Name: "g", Size: 1, Init: []int32{1, 2}}}}
	if err := VerifyModule(m2); err == nil {
		t.Error("oversized initializer accepted")
	}
	m3 := &Module{Globals: []Global{{Name: "g", Size: 1}, {Name: "g", Size: 1}}}
	if err := VerifyModule(m3); err == nil {
		t.Error("duplicate global accepted")
	}
}

func TestLivenessDiamond(t *testing.T) {
	f := buildDiamond(t)
	li := Liveness(f)
	cond, a, x := f.Params[0], f.Params[1], f.Params[2]
	res := f.Blocks[3].Term.Val
	in0 := li.In[0]
	for _, r := range []Reg{cond, a, x} {
		if !in0.Has(r) {
			t.Errorf("r%d should be live into entry", r)
		}
	}
	if li.In[0].Has(res) {
		t.Error("result live into entry")
	}
	// a and x live into both arms; res live out of both arms.
	for _, bi := range []int{1, 2} {
		if !li.In[bi].Has(a) || !li.In[bi].Has(x) {
			t.Errorf("block %d: operands not live in", bi)
		}
		if !li.Out[bi].Has(res) {
			t.Errorf("block %d: result not live out", bi)
		}
		if li.In[bi].Has(cond) {
			t.Errorf("block %d: cond should be dead", bi)
		}
	}
	if !li.In[3].Has(res) {
		t.Error("res not live into exit")
	}
}

func TestLivenessLoop(t *testing.T) {
	// i = 0; while (i < n) { s = s + i; i = i + 1 } return s
	b := NewBuilder("loop", 2)
	n, s := b.Fn.Params[0], b.Fn.Params[1]
	i := b.Fn.NewReg()
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.CopyTo(i, b.Const(0))
	b.Jump(head)
	b.SetBlock(head)
	c := b.Op(OpLt, i, n)
	b.Branch(c, body, exit)
	b.SetBlock(body)
	b.CopyTo(s, b.Op(OpAdd, s, i))
	b.CopyTo(i, b.Op(OpAdd, i, b.Const(1)))
	b.Jump(head)
	b.SetBlock(exit)
	b.Ret(s)
	f := b.Finish()
	if err := VerifyFunction(f, nil); err != nil {
		t.Fatalf("verify: %v", err)
	}
	li := Liveness(f)
	// i and s must be live around the back edge: live into head and body.
	for _, bi := range []int{1, 2} {
		if !li.In[bi].Has(i) || !li.In[bi].Has(s) || !li.In[bi].Has(n) {
			t.Errorf("block %d: loop-carried values not live in", bi)
		}
	}
	if li.In[0].Has(i) {
		t.Error("i live into entry despite being defined there first")
	}
}

func TestAFUExec(t *testing.T) {
	// out0 = (a+b)<<2 ; out1 = a-b
	d := AFUDef{
		Name:     "test",
		NumIn:    2,
		NumSlots: 5,
		Body: []AFUOp{
			{Op: OpAdd, A: 0, B: 1, Dst: 2},
			{Op: OpConst, Imm: 2, Dst: 3},
			{Op: OpShl, A: 2, B: 3, Dst: 2},
			{Op: OpSub, A: 0, B: 1, Dst: 4},
		},
		OutSlots: []int{2, 4},
	}
	out, err := d.Exec([]int32{5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 32 || out[1] != 2 {
		t.Errorf("got %v, want [32 2]", out)
	}
	if _, err := d.Exec([]int32{1}); err == nil {
		t.Error("wrong input count accepted")
	}
	// Select inside an AFU body.
	d2 := AFUDef{
		Name: "sel", NumIn: 3, NumSlots: 4,
		Body:     []AFUOp{{Op: OpSelect, A: 0, B: 1, C: 2, Dst: 3}},
		OutSlots: []int{3},
	}
	out, err = d2.Exec([]int32{0, 11, 22})
	if err != nil || out[0] != 22 {
		t.Errorf("sel afu: %v %v", out, err)
	}
}

func TestModuleLookups(t *testing.T) {
	f := buildDiamond(t)
	m := &Module{Funcs: []*Function{f}, Globals: []Global{{Name: "a", Size: 1}, {Name: "b", Size: 2}}}
	if m.Func("diamond") != f || m.Func("nope") != nil {
		t.Error("Func lookup broken")
	}
	if m.GlobalIndex("b") != 1 || m.GlobalIndex("zz") != -1 {
		t.Error("GlobalIndex broken")
	}
	idx := m.AddAFU(AFUDef{Name: "x", NumIn: 1, NumSlots: 1, OutSlots: []int{0}})
	if idx != 0 || len(m.AFUs) != 1 {
		t.Error("AddAFU broken")
	}
}

func TestPrinting(t *testing.T) {
	f := buildDiamond(t)
	s := f.String()
	for _, want := range []string{"func diamond(", "entry:", "branch", "= add", "= sub", "ret "} {
		if !strings.Contains(s, want) {
			t.Errorf("function printout missing %q:\n%s", want, s)
		}
	}
	m := &Module{
		Funcs:   []*Function{f},
		Globals: []Global{{Name: "tab", Size: 3, Init: []int32{7, 8}}},
		AFUs:    []AFUDef{{Name: "afu0", NumIn: 2, NumSlots: 3, OutSlots: []int{2}, Latency: 1}},
	}
	ms := m.String()
	for _, want := range []string{"global @tab[3] = {7, 8}", "afu #0 afu0: 2 in, 1 out"} {
		if !strings.Contains(ms, want) {
			t.Errorf("module printout missing %q:\n%s", want, ms)
		}
	}
	in := Instr{Op: OpCall, Sym: "f", Dsts: []Reg{3}, Args: []Reg{1, 2}}
	if got := in.String(); got != "r3 = call @f (r1, r2)" {
		t.Errorf("call printout = %q", got)
	}
	cst := Instr{Op: OpConst, Dsts: []Reg{0}, Imm: -7}
	if got := cst.String(); got != "r0 = const -7" {
		t.Errorf("const printout = %q", got)
	}
}

func TestRegSet(t *testing.T) {
	s := NewRegSet(130)
	if s.Has(0) || s.Has(129) {
		t.Error("fresh set not empty")
	}
	if !s.Add(129) || s.Add(129) {
		t.Error("Add change reporting wrong")
	}
	if !s.Has(129) || s.Count() != 1 {
		t.Error("membership after Add wrong")
	}
	s.Add(0)
	s.Add(64)
	if s.Count() != 3 {
		t.Errorf("count = %d, want 3", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Remove broken")
	}
	t2 := NewRegSet(130)
	t2.Add(5)
	if !t2.UnionWith(s) || t2.Count() != 3 {
		t.Error("UnionWith broken")
	}
	if t2.UnionWith(s) {
		t.Error("UnionWith reported change on no-op")
	}
	c := s.Copy()
	c.Add(7)
	if s.Has(7) {
		t.Error("Copy aliases original")
	}
	if s.Has(NoReg) {
		t.Error("NoReg reported as member")
	}
	s.Add(NoReg) // must be a no-op
	s.Remove(NoReg)
}
