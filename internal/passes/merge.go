// Package passes implements the IR transformations that prepare MiniC
// programs for ISE identification, mirroring the paper's MachSUIF
// preprocessing (§8): a classic if-conversion pass that turns acyclic
// conditionals into SEL operations, plus the scalar cleanups (constant
// folding, local value numbering, copy coalescing, dead-code elimination)
// that a production compiler would have applied before identification.
package passes

import "isex/internal/ir"

// RemoveUnreachable deletes blocks not reachable from the entry.
// It reports whether anything changed.
func RemoveUnreachable(f *ir.Function) bool {
	reach := map[*ir.Block]bool{}
	var stack []*ir.Block
	stack = append(stack, f.Entry())
	reach[f.Entry()] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	if len(reach) == len(f.Blocks) {
		return false
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	f.RecomputeCFG()
	return true
}

// MergeBlocks performs jump threading and straight-line merging:
//
//   - a conditional branch whose two targets are equal becomes a jump;
//   - a block ending in a jump to a block with exactly one predecessor
//     absorbs that block;
//   - a jump to an empty block that itself ends in a jump is redirected.
//
// It iterates to a fixpoint and reports whether anything changed.
func MergeBlocks(f *ir.Function) bool {
	changed := false
	for {
		RemoveUnreachable(f)
		stepChanged := false
		// Equal-target branches become jumps.
		for _, b := range f.Blocks {
			if b.Term.Kind == ir.TermBranch && b.Term.Targets[0] == b.Term.Targets[1] {
				b.Term = ir.Term{Kind: ir.TermJump, Targets: []*ir.Block{b.Term.Targets[0]}}
				stepChanged = true
			}
		}
		if stepChanged {
			f.RecomputeCFG()
		}
		// Redirect jumps through empty forwarding blocks.
		for _, b := range f.Blocks {
			for ti, tgt := range b.Term.Targets {
				// The hop bound guards against cycles of empty blocks.
				for hops := 0; len(tgt.Instrs) == 0 && tgt.Term.Kind == ir.TermJump &&
					tgt != b && tgt.Term.Targets[0] != tgt && hops < len(f.Blocks); hops++ {
					tgt = tgt.Term.Targets[0]
				}
				if tgt != b.Term.Targets[ti] {
					b.Term.Targets[ti] = tgt
					stepChanged = true
				}
			}
		}
		if stepChanged {
			f.RecomputeCFG()
		}
		// Absorb single-predecessor jump targets.
		for _, b := range f.Blocks {
			for b.Term.Kind == ir.TermJump {
				t := b.Term.Targets[0]
				if t == b || len(t.Preds) != 1 || t == f.Entry() {
					break
				}
				b.Instrs = append(b.Instrs, t.Instrs...)
				b.Term = t.Term
				t.Instrs = nil
				t.Term = ir.Term{Kind: ir.TermJump, Targets: []*ir.Block{t}} // orphan self-loop; removed below
				f.RecomputeCFG()
				stepChanged = true
			}
		}
		if stepChanged {
			RemoveUnreachable(f)
			changed = true
			continue
		}
		return changed
	}
}
