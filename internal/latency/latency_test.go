package latency

import (
	"testing"

	"isex/internal/ir"
)

func TestDefaultCoversAllPureOps(t *testing.T) {
	m := Default()
	for _, op := range []ir.Op{
		ir.OpConst, ir.OpCopy, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpNeg, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot, ir.OpShl, ir.OpAShr,
		ir.OpLShr, ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe,
		ir.OpULt, ir.OpULe, ir.OpUGt, ir.OpUGe, ir.OpSelect, ir.OpMin, ir.OpMax,
		ir.OpAbs, ir.OpSExt8, ir.OpSExt16, ir.OpZExt8, ir.OpZExt16,
	} {
		if op != ir.OpConst && m.SW(op) <= 0 {
			t.Errorf("%s: SW latency %d", op, m.SW(op))
		}
		if op != ir.OpConst && op != ir.OpCopy && m.HW(op) <= 0 {
			t.Errorf("%s: HW delay %v", op, m.HW(op))
		}
	}
	// Barriers have software cost (the simulator accounts them).
	for _, op := range []ir.Op{ir.OpLoad, ir.OpStore, ir.OpCall, ir.OpGlobal, ir.OpAlloca} {
		if m.SW(op) <= 0 {
			t.Errorf("%s: barrier SW latency %d", op, m.SW(op))
		}
	}
}

func TestRelativeDelays(t *testing.T) {
	m := Default()
	// Key ratios the paper's motivation depends on: several adds chain
	// within one MAC-normalized cycle; logic is nearly free; a multiplier
	// nearly fills a cycle.
	if !(m.HW(ir.OpAnd) < m.HW(ir.OpSelect) && m.HW(ir.OpSelect) < m.HW(ir.OpAdd)) {
		t.Error("logic < mux < add ordering violated")
	}
	if !(m.HW(ir.OpAdd) < m.HW(ir.OpMul) && m.HW(ir.OpMul) <= 1.0) {
		t.Error("add < mul <= MAC ordering violated")
	}
	if 3*m.HW(ir.OpAdd) > 1.0 {
		t.Error("three chained adds should fit in one normalized cycle")
	}
}

func TestCyclesOf(t *testing.T) {
	cases := []struct {
		d    float64
		want int
	}{
		{0, 0}, {-1, 0}, {0.1, 1}, {0.9, 1}, {1.0, 1}, {1.0000001, 2},
		{1.5, 2}, {2.0, 2}, {2.3, 3}, {3.999, 4},
	}
	for _, c := range cases {
		if got := CyclesOf(c.d); got != c.want {
			t.Errorf("CyclesOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestPerturbed(t *testing.T) {
	m := Default()
	p := m.Perturbed(42, 0.3)
	if p.SW(ir.OpMul) != m.SW(ir.OpMul) {
		t.Error("perturbation must not change software latencies")
	}
	changed := false
	for _, op := range []ir.Op{ir.OpAdd, ir.OpMul, ir.OpShl, ir.OpSelect} {
		r := p.HW(op) / m.HW(op)
		if r < 0.7-1e-9 || r > 1.3+1e-9 {
			t.Errorf("%s: perturbation ratio %v out of bounds", op, r)
		}
		if r != 1 {
			changed = true
		}
	}
	if !changed {
		t.Error("perturbation changed nothing")
	}
	// Determinism.
	p2 := m.Perturbed(42, 0.3)
	if p.HW(ir.OpAdd) != p2.HW(ir.OpAdd) {
		t.Error("perturbation not deterministic")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad eps accepted")
		}
	}()
	m.Perturbed(1, 1.5)
}
