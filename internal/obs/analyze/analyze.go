// Package analyze lifts the flat flight-recorder timeline (internal/obs)
// into a causal span tree — pipeline stage → DSE cell → block search →
// worker lane → rescue/racer/greedy rung — and computes attribution
// reports over it: where the wall-clock went, which pruning rule earned
// its keep, what the warm-start/dedup/racer machinery actually paid.
//
// The span model costs the recorder nothing new: block searches, stages
// and cells each allocate one span ID (obs.NextSpan) and parent links
// ride payload slots of the span's start event (KSearchStart.C,
// KStageStart.A); worker rings are bound to their search's span once at
// Probe.Attach. The analyzer only ever consumes the merged JSONL form,
// so it can run post-mortem on any recorded trace (cmd/isetrace) or
// in-process right after a run (isex -explain, the DSE sweep's per-cell
// attribution).
//
// Determinism contract: everything reachable from Analysis is grouped
// and keyed by stable names (tags, constraint tuples) — never by raw
// span IDs, ring IDs or timestamps, which are allocation- and
// timing-order dependent. The deterministic renderers (WriteExplain,
// ExplainReport) additionally exclude all timing- and worker-dependent
// quantities, so their output is byte-identical across worker counts
// for exhaustive runs; the full renderers (summary, critical path,
// lanes) embrace wall-clock and are for humans and fixtures, not for
// byte comparison across runs.
package analyze

import (
	"fmt"
	"sort"

	"isex/internal/obs"
)

// statusNames mirrors core.SearchStatus.String for the status codes
// carried by search_end events. Kept local so the analyzer depends only
// on obs; the cross-package agreement is asserted by a test.
var statusNames = []string{
	"exhaustive",
	"budget-stopped",
	"deadline-exceeded",
	"canceled",
	"stalled",
	"recovered",
}

// StatusName renders a search_end status code.
func StatusName(code int64) string {
	if code >= 0 && int(code) < len(statusNames) {
		return statusNames[code]
	}
	return fmt.Sprintf("status(%d)", code)
}

// Lane is one worker ring's activity inside one block search. Ring IDs
// are allocation-order dependent; lanes are therefore reported in
// ring-ID order only inside full (non-deterministic) renderings.
type Lane struct {
	Ring       int32
	FirstT     int64 // first event timestamp (ns since recorder epoch)
	LastT      int64
	Events     int64
	Prunes     int64 // feasibility rejections (KPrune)
	Bounds     int64 // merit-bound cutoffs (KBound)
	Incumbents int64
	Steals     int64
	StolenSubs int64
	Donates    int64
	Resplits   int64
	Stops      int64
	WarmSeeds  int64
}

// RacerPub is one racer publication into a block's shared bound.
type RacerPub struct {
	T       int64
	Merit   int64
	Restart int64
	CutSize int64
}

// IncumbentStep is one incumbent improvement inside a block search.
type IncumbentStep struct {
	T     int64
	Merit int64
	Cuts  int64
}

// Block is one block search span (one searchBlock*Safe invocation).
type Block struct {
	Span   int64
	Parent int64 // stage or cell span, 0 at top level
	Tag    string
	Ops    int64
	// Workers is the engine worker count the search was configured with
	// (0 = serial); excluded from deterministic renderings.
	Workers int64
	StartT  int64
	EndT    int64
	Ended   bool
	Status  int64
	Merit   int64 // -1 when nothing found
	Cuts    int64 // cuts considered (from search_end; exact)

	// Ring-derived tallies, summed over lanes. Exact whenever no ring
	// overflowed during recording (the recorder reports drops at write
	// time); worker-count-invariant for exhaustive runs without
	// merit-bound pruning, because the engine partitions the tree.
	Prunes     int64
	Bounds     int64
	Incumbents int64
	Steals     int64
	StolenSubs int64
	Donates    int64
	Resplits   int64

	Lanes       []*Lane
	Incumbent   []IncumbentStep
	WarmMerit   int64 // best warm/engine seed merit observed (0 = none)
	SeedMerit   int64 // seed-book hit merit armed for this search (0 = none)
	SeedPuts    int64
	SeedRejects int64

	// Degradation-ladder outcomes (sys events scoped to this span).
	RescueTried     bool
	RescueFound     bool
	RescueMerit     int64
	RescueCuts      int64
	GreedyTried     bool
	GreedyFound     bool
	GreedyMerit     int64
	RacerPubs       []RacerPub
	RacerRestarts   int64
	RacerToggles    int64
	RacerAdopted    bool
	RacerAdoptMerit int64
	Panics          int64
}

// Duration returns the block's wall-clock span in nanoseconds (0 when
// the end event is missing).
func (b *Block) Duration() int64 {
	if !b.Ended || b.EndT < b.StartT {
		return 0
	}
	return b.EndT - b.StartT
}

// Stage is one selection-driver invocation span.
type Stage struct {
	Span       int64
	Parent     int64 // cell span, 0 at top level
	Tag        string
	Ninstr     int64
	StartT     int64
	EndT       int64
	Ended      bool
	Selected   int64
	TotalMerit int64
	IdentCalls int64

	Blocks []*Block

	// Driver-scoped events (emitted on the stage span).
	DedupHits      int64
	DedupMisses    int64
	Collapses      int64
	SpecLaunches   int64
	SpecAdopts     int64
	SpecDiscards   int64
	MemoCollisions int64
}

// Duration returns the stage's wall-clock span in nanoseconds.
func (s *Stage) Duration() int64 {
	if !s.Ended || s.EndT < s.StartT {
		return 0
	}
	return s.EndT - s.StartT
}

// Cell is one DSE constraint group span ("benchmark/target" × (nin,nout)).
type Cell struct {
	Span   int64
	Tag    string // "benchmark/target"
	Nin    int64
	Nout   int64
	Ninstr int64
	StartT int64
	EndT   int64
	Ended  bool
	Merit  int64

	Stages []*Stage
}

// Duration returns the cell's wall-clock span in nanoseconds.
func (c *Cell) Duration() int64 {
	if !c.Ended || c.EndT < c.StartT {
		return 0
	}
	return c.EndT - c.StartT
}

// Analysis is the causal span tree plus whole-trace tallies.
type Analysis struct {
	Events int
	// Cells, Stages, Blocks hold every span in first-event order.
	// TopStages and TopBlocks list the spans with no recorded parent in
	// the trace (the usual case for single `isex` runs).
	Cells     []*Cell
	Stages    []*Stage
	Blocks    []*Block
	TopStages []*Stage
	TopBlocks []*Block
	// Orphans counts ring events whose span has no search_start in the
	// trace (a ring overflow ate the opening event) plus sys events on
	// unknown spans; Unscoped counts span-0 events.
	Orphans  int
	Unscoped int
}

// Build lifts a merged event timeline into the span tree. Events must be
// time-ordered (obs.Recorder.Merge order); ParseJSONL preserves it.
func Build(events []obs.Event) *Analysis {
	a := &Analysis{Events: len(events)}
	cells := make(map[int64]*Cell)
	stages := make(map[int64]*Stage)
	blocks := make(map[int64]*Block)

	lane := func(b *Block, ring int32, t int64) *Lane {
		for _, l := range b.Lanes {
			if l.Ring == ring {
				return l
			}
		}
		l := &Lane{Ring: ring, FirstT: t}
		b.Lanes = append(b.Lanes, l)
		return l
	}

	for _, e := range events {
		if e.Span == 0 {
			a.Unscoped++
			continue
		}
		switch e.Kind {
		case obs.KStageStart:
			s := &Stage{Span: e.Span, Parent: e.A, Tag: e.Tag, Ninstr: e.B, StartT: e.T}
			stages[e.Span] = s
			a.Stages = append(a.Stages, s)
			continue
		case obs.KCellStart:
			c := &Cell{Span: e.Span, Tag: e.Tag, Nin: e.A, Nout: e.B, Ninstr: e.C, StartT: e.T}
			cells[e.Span] = c
			a.Cells = append(a.Cells, c)
			continue
		case obs.KSearchStart:
			b := &Block{Span: e.Span, Parent: e.C, Tag: e.Tag, Ops: e.A,
				Workers: e.B, StartT: e.T, Merit: -1}
			blocks[e.Span] = b
			a.Blocks = append(a.Blocks, b)
			continue
		}
		if b, ok := blocks[e.Span]; ok {
			buildBlockEvent(a, b, e, lane)
			continue
		}
		if s, ok := stages[e.Span]; ok {
			buildStageEvent(s, e)
			continue
		}
		if c, ok := cells[e.Span]; ok {
			if e.Kind == obs.KCellEnd {
				c.Ended, c.EndT, c.Merit = true, e.T, e.C
			}
			continue
		}
		a.Orphans++
	}

	// Link children to parents; spans whose parent is absent from the
	// trace surface at top level.
	for _, s := range a.Stages {
		if c, ok := cells[s.Parent]; ok {
			c.Stages = append(c.Stages, s)
		} else {
			a.TopStages = append(a.TopStages, s)
		}
	}
	for _, b := range a.Blocks {
		if s, ok := stages[b.Parent]; ok {
			s.Blocks = append(s.Blocks, b)
		} else {
			a.TopBlocks = append(a.TopBlocks, b)
		}
	}
	for _, b := range a.Blocks {
		sort.Slice(b.Lanes, func(i, j int) bool { return b.Lanes[i].Ring < b.Lanes[j].Ring })
	}
	return a
}

// buildBlockEvent folds one block-scoped event into its span.
func buildBlockEvent(a *Analysis, b *Block, e obs.Event, lane func(*Block, int32, int64) *Lane) {
	// Ring events update the per-worker lane; ring 0 is the shared sys
	// ring, whose events are coordinator-side.
	var l *Lane
	if e.Ring != 0 {
		l = lane(b, e.Ring, e.T)
		l.Events++
		if e.T > l.LastT {
			l.LastT = e.T
		}
	}
	switch e.Kind {
	case obs.KSearchEnd:
		b.Ended, b.EndT = true, e.T
		b.Status, b.Merit, b.Cuts = e.A, e.B, e.C
	case obs.KPrune:
		b.Prunes++
		if l != nil {
			l.Prunes++
		}
	case obs.KBound:
		b.Bounds++
		if l != nil {
			l.Bounds++
		}
	case obs.KIncumbent:
		b.Incumbents++
		if l != nil {
			l.Incumbents++
		}
		b.Incumbent = append(b.Incumbent, IncumbentStep{T: e.T, Merit: e.A, Cuts: e.B})
	case obs.KSteal:
		b.Steals++
		b.StolenSubs += e.A
		if l != nil {
			l.Steals++
			l.StolenSubs += e.A
		}
	case obs.KDonate:
		b.Donates++
		if l != nil {
			l.Donates++
		}
	case obs.KResplit:
		b.Resplits++
		if l != nil {
			l.Resplits++
		}
	case obs.KStop:
		if l != nil {
			l.Stops++
		}
	case obs.KWarmSeed:
		if e.A > b.WarmMerit {
			b.WarmMerit = e.A
		}
		if l != nil {
			l.WarmSeeds++
		}
	case obs.KRescue:
		b.RescueTried = true
		b.RescueFound = e.A != 0
		b.RescueMerit, b.RescueCuts = e.B, e.C
	case obs.KGreedy:
		b.GreedyTried = true
		b.GreedyFound = e.A != 0
		b.GreedyMerit = e.B
	case obs.KRestart:
		b.RacerRestarts++
	case obs.KToggle:
		b.RacerToggles += e.A
	case obs.KRacerPublish:
		b.RacerPubs = append(b.RacerPubs, RacerPub{T: e.T, Merit: e.A, Restart: e.B, CutSize: e.C})
	case obs.KRacerAdopt:
		b.RacerAdopted = true
		b.RacerAdoptMerit = e.A
	case obs.KSeedHit:
		if e.A > b.SeedMerit {
			b.SeedMerit = e.A
		}
	case obs.KSeedPut:
		b.SeedPuts++
	case obs.KSeedReject:
		b.SeedRejects += e.A
	case obs.KPanic:
		b.Panics++
	default:
		// A kind we do not attribute to blocks (stage/cell scoped, or a
		// future addition): count it so nothing disappears silently.
		a.Orphans++
	}
}

// buildStageEvent folds one stage-scoped event into its span.
func buildStageEvent(s *Stage, e obs.Event) {
	switch e.Kind {
	case obs.KStageEnd:
		s.Ended, s.EndT = true, e.T
		s.Selected, s.TotalMerit, s.IdentCalls = e.A, e.B, e.C
	case obs.KDedup:
		if e.A != 0 {
			s.DedupHits++
		} else {
			s.DedupMisses++
		}
	case obs.KCollapse:
		s.Collapses++
	case obs.KSpecLaunch:
		s.SpecLaunches++
	case obs.KSpecAdopt:
		s.SpecAdopts++
	case obs.KSpecDiscard:
		s.SpecDiscards++
	case obs.KMemoCollision:
		s.MemoCollisions++
	}
}

// blockKinds and stageKinds declare which kinds the builder attributes
// to which span level; HandledKinds is the union plus the span-opening
// and cell kinds. The exhaustiveness guard test asserts every obs.Kind
// is claimed by exactly one level (or explicitly listed as unscoped).
var blockKinds = []obs.Kind{
	obs.KSearchEnd, obs.KPrune, obs.KBound, obs.KIncumbent, obs.KSteal,
	obs.KDonate, obs.KResplit, obs.KStop, obs.KWarmSeed, obs.KRescue,
	obs.KGreedy, obs.KRestart, obs.KToggle, obs.KRacerPublish,
	obs.KRacerAdopt, obs.KSeedHit, obs.KSeedPut, obs.KSeedReject,
	obs.KPanic,
}

var stageKinds = []obs.Kind{
	obs.KStageEnd, obs.KDedup, obs.KCollapse, obs.KSpecLaunch,
	obs.KSpecAdopt, obs.KSpecDiscard, obs.KMemoCollision,
}

// unscopedKinds may legitimately appear with span 0 (coordinator events
// outside any search: the engine watchdog, pool-leak stalls, manual
// Recorder.Sys calls) and have no per-span attribution.
var unscopedKinds = []obs.Kind{obs.KStall}

// spanOpenKinds open a new span.
var spanOpenKinds = []obs.Kind{obs.KSearchStart, obs.KStageStart, obs.KCellStart}

// cellKinds close cells.
var cellKinds = []obs.Kind{obs.KCellEnd}

// HandledKinds returns, for every obs.Kind, whether the analyzer has a
// decode case for it. The exhaustiveness guard test fails when a newly
// added kind is missing here and in the builder.
func HandledKinds() map[obs.Kind]bool {
	m := make(map[obs.Kind]bool)
	for _, set := range [][]obs.Kind{blockKinds, stageKinds, unscopedKinds, spanOpenKinds, cellKinds} {
		for _, k := range set {
			m[k] = true
		}
	}
	return m
}
