// Package obs is the search telemetry subsystem: a per-worker lock-free
// flight recorder of typed search events, an atomic metrics registry, and
// the Probe handle that internal/core threads through every search layer.
//
// Design constraints, in priority order:
//
//  1. Observation must never change what the search computes. Events and
//     metrics are strictly write-only side channels; nothing in this
//     package feeds a value back into search decisions.
//  2. A nil probe must cost one predictable branch per probe point. All
//     Probe and SearchObs methods are nil-receiver safe, and the hot
//     per-cut counters are not emitted per cut at all — they are flushed
//     as deltas at the search's existing poll cadence.
//  3. The enabled path must be allocation-free per event. Events are
//     fixed-size structs written into preallocated rings; metric updates
//     are single atomic adds.
package obs

import "fmt"

// Kind identifies the type of a recorded search event.
type Kind uint8

const (
	// KSearchStart marks the start of one block search. Tag is
	// "fn/block", A the operation count, B the worker count.
	KSearchStart Kind = iota
	// KSearchEnd marks the end of one block search. Tag is "fn/block",
	// A the SearchStatus code, B the merit found (-1 when none), C the
	// cuts considered.
	KSearchEnd
	// KIncumbent records an incumbent improvement: A the new merit, B
	// the cuts considered so far by the emitting searcher, C the node
	// rank at which the cut completed.
	KIncumbent
	// KPrune records a feasibility rejection (ports or convexity) at
	// node rank A.
	KPrune
	// KBound records a merit-upper-bound subtree cutoff at node rank A
	// with incumbent B (PruneMerit only).
	KBound
	// KSteal records worker Ring stealing A subproblems from victim
	// worker B.
	KSteal
	// KDonate records the emitting worker donating the unexplored
	// 0-branch at prefix rank A back to the deques.
	KDonate
	// KResplit records the emitting worker expanding a shallow
	// subproblem at depth A into B children instead of searching it.
	KResplit
	// KSpecLaunch records the scheduler launching a speculative search.
	// Tag is "fn/block", A the per-cut limit m (0 for a single-cut or
	// collapse speculation), B is 1 for a speculative collapse.
	KSpecLaunch
	// KSpecAdopt records a speculative result adopted by the round
	// logic. Tag is "fn/block", A the per-cut limit m.
	KSpecAdopt
	// KSpecDiscard records a speculative result discarded as stale.
	// Tag is "fn/block".
	KSpecDiscard
	// KStop records a searcher observing a stop condition: A the
	// SearchStatus code (BudgetStopped, DeadlineExceeded, Canceled).
	KStop
	// KRescue records a §9 windowed rescue attempt after a trip. Tag is
	// "fn/block", A is 1 when the rescue found a cut, B its merit, C
	// the cuts the rescue examined.
	KRescue
	// KCollapse records a selection-round winner collapse. Tag is the
	// super-node name, A the selection round, B the cut size.
	KCollapse
	// KWarmSeed records a warm-start pass seeding the incumbent with
	// merit A before the exact search starts.
	KWarmSeed
	// KPanic records a recovered panic. Tag is "fn/block: message"
	// (truncated); A is the retry attempt that recovered it (0 for the
	// block-level guard).
	KPanic
	// KGreedy records a greedy last-resort rescue attempt (the bottom
	// rung of the degradation ladder). Tag is "fn/block", A is 1 when
	// the rung produced a cut, B its merit, C the candidate count.
	KGreedy
	// KStall records the engine watchdog declaring worker A stalled
	// after B poll-window samples without progress.
	KStall
	// KDedup records a cross-block dedup lookup by the selection drivers.
	// Tag is "fn/block" of the requesting block, A is 1 on a hit (an
	// isomorphic block's identification was adopted) and 0 on a miss, B
	// the per-cut limit m (0 for the single-cut search).
	KDedup
	// KMemoCollision records the scheduler refusing to adopt a memoized
	// task whose graph is not structurally equal to the requested one (a
	// 64-bit fingerprint collision, or a divergent speculative slot). Tag
	// is "fn/block", A the per-cut limit m.
	KMemoCollision
	// KToggle records the iterative racer flushing its toggle-iteration
	// tally: A the toggles applied since the last flush, B the running
	// total for this racer.
	KToggle
	// KRestart records the racer starting KL restart A from a seed of
	// merit B and size C. Tag is "fn/block".
	KRestart
	// KRacerPublish records the racer publishing a Legal/Evaluate
	// revalidated incumbent: A its merit, B the restart that produced it,
	// C the cut size. Tag is "fn/block".
	KRacerPublish
	// KRacerAdopt records the anytime layer adopting the racer's best
	// answer after the exact search degraded: A the adopted merit, B the
	// merit the exact rungs had (or -1). Tag is "fn/block".
	KRacerAdopt
	// KStageStart marks a selection driver entering: one stage span per
	// SelectIterativeCtx/SelectOptimalCtx invocation. Tag is the driver
	// name ("select/iterative", "select/optimal"), A the parent span (0
	// at top level), B the instruction budget ninstr. The event's Span is
	// the freshly allocated stage span; block searches launched by the
	// driver carry it as their parent.
	KStageStart
	// KStageEnd marks the driver returning: A the number of instructions
	// selected, B the total merit, C the identification calls consumed.
	KStageEnd
	// KCellStart marks a DSE chain beginning one constraint group's
	// selection. Tag is "benchmark/target", A is Nin, B is Nout, C the
	// maximum Ninstr the group searches. The event's Span is the cell
	// span; the group's selection stage carries it as its parent.
	KCellStart
	// KCellEnd marks the constraint group done: A is Nin, B is Nout, C
	// the selection's total merit.
	KCellEnd
	// KSeedPut records a SeedBook storing an exhaustive winner: A its
	// merit, B the cut size. Tag is "fn/block".
	KSeedPut
	// KSeedHit records a SeedBook lookup arming a revalidated incumbent
	// seed of merit A (B is the cut size). Tag is "fn/block".
	KSeedHit
	// KSeedReject records a SeedBook lookup rejecting A stored cuts at
	// revalidation (illegal at the consuming ports, or non-positive
	// re-evaluated merit). Tag is "fn/block".
	KSeedReject

	// KindCount is the number of defined kinds; kinds are dense, so
	// Kind(i) for i < KindCount enumerates them (see AllKinds).
	KindCount = int(KSeedReject) + 1
	kindCount = KindCount
)

var kindNames = [kindCount]string{
	KSearchStart:   "search_start",
	KSearchEnd:     "search_end",
	KIncumbent:     "incumbent",
	KPrune:         "prune",
	KBound:         "bound",
	KSteal:         "steal",
	KDonate:        "donate",
	KResplit:       "resplit",
	KSpecLaunch:    "spec_launch",
	KSpecAdopt:     "spec_adopt",
	KSpecDiscard:   "spec_discard",
	KStop:          "stop",
	KRescue:        "rescue",
	KCollapse:      "collapse",
	KWarmSeed:      "warm_seed",
	KPanic:         "panic",
	KGreedy:        "greedy_rescue",
	KStall:         "stall",
	KDedup:         "dedup",
	KMemoCollision: "memo_collision",
	KToggle:        "toggle",
	KRestart:       "restart",
	KRacerPublish:  "racer_publish",
	KRacerAdopt:    "racer_adopt",
	KStageStart:    "stage_start",
	KStageEnd:      "stage_end",
	KCellStart:     "cell_start",
	KCellEnd:       "cell_end",
	KSeedPut:       "seed_put",
	KSeedHit:       "seed_hit",
	KSeedReject:    "seed_reject",
}

// AllKinds enumerates every defined kind, in declaration order.
func AllKinds() []Kind {
	out := make([]Kind, KindCount)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// String returns the stable wire name of the kind ("incumbent", "steal",
// ...) used by both export formats.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one fixed-size flight-recorder entry. T is nanoseconds since
// the owning Recorder's epoch; Ring identifies the buffer that recorded
// it (one per searcher goroutine, plus the shared "sys" ring 0). The
// meaning of A, B, C and Tag depends on Kind; unused fields are zero.
//
// Span is the causal-span ID the event belongs to (0 = unscoped): block
// searches, selection stages and DSE cells each allocate one via
// NextSpan, and parent links ride the payload slots of the span's start
// event (KSearchStart.C, KStageStart.A, KCellStart.C) — so the flat
// timeline lifts into the stage → cell → block → worker tree without
// any per-event parent pointer. Span IDs are process-unique and
// allocation-order dependent; deterministic analyzer output must never
// expose raw IDs, only the relations they encode.
type Event struct {
	T    int64
	Ring int32
	Kind Kind
	Span int64
	A    int64
	B    int64
	C    int64
	Tag  string
}
