// Word-parallel constraint kernel. The IN/OUT/convexity predicates of §5
// are the hot path of every identification algorithm — the exact search's
// reference checks, the brute-force enumerators, the baselines, and merit
// evaluation all call them per candidate cut. The specification
// implementations in cut.go rebuild a []bool membership slice plus a map
// per call; this file replaces them on the hot path with bitset
// arithmetic over tables precomputed once per graph:
//
//   - preds/succs: per-node data-edge neighbour bitsets
//   - anc/desc:    per-node reflexive transitive closures over data AND
//     order edges (one O(E·V/64) sweep along the topological order)
//
// With those tables a legality check is O(|S|·V/64) word operations and
// zero heap allocations:
//
//	IN(S)      = |(∪_{v∈S} preds[v]) \ S|
//	OUT(S)     = |{v ∈ S : succs[v] \ S ≠ ∅}|
//	convex(S)  ⇔ (∪ desc[v] ∩ ∪ anc[v]) \ S = ∅
//
// The convexity identity holds because a node u ∉ S lies on a path
// between two members iff u is reachable from S and reaches S; splitting
// any witness walk at the last member before u and the first member after
// u yields the outside-only path the specification predicate searches for.
//
// The tables are immutable after construction and shared by Restrict
// views; the small scratch accumulators are per-Graph, so queries on one
// Graph value are not safe for concurrent use. The search engines honor
// this: the parallel branch-and-bound workers touch only the immutable
// node tables (their searchers keep private incremental state) and every
// kernel query — Evaluate at merge time, the selection layer's checks —
// runs single-threaded on the owning goroutine, or on a Restrict view,
// which shares the tables but owns its scratch.
package dfg

import "math/bits"

// BitSet is a fixed-capacity set of node IDs backed by machine words.
type BitSet []uint64

// NewBitSet returns a set able to hold IDs in [0, n). Capacity is padded
// to at least two words so the kernel's register-resident two-word fast
// path applies to every graph of up to 128 nodes — i.e. essentially all
// real basic blocks.
func NewBitSet(n int) BitSet {
	w := (n + 63) / 64
	if w < 2 {
		w = 2
	}
	return make(BitSet, w)
}

// Has reports membership of id.
func (b BitSet) Has(id int) bool { return b[id>>6]&(1<<(uint(id)&63)) != 0 }

// Set adds id.
func (b BitSet) Set(id int) { b[id>>6] |= 1 << (uint(id) & 63) }

// Unset removes id.
func (b BitSet) Unset(id int) { b[id>>6] &^= 1 << (uint(id) & 63) }

// Reset clears every member.
func (b BitSet) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Or adds every member of o.
func (b BitSet) Or(o BitSet) {
	for i, w := range o {
		b[i] |= w
	}
}

// CopyFrom overwrites b with o (same capacity).
func (b BitSet) CopyFrom(o BitSet) {
	copy(b, o)
}

// Empty reports whether no bit is set.
func (b BitSet) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every member in ascending order.
func (b BitSet) ForEach(fn func(id int)) {
	for wi, w := range b {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// kernel holds the precomputed word-parallel tables of one graph. It is
// immutable after buildKernel and shared between a graph and its Restrict
// views (which differ only in their forbidden set).
type kernel struct {
	words int
	// preds/succs are data-edge neighbours; adj is their union (the
	// undirected adjacency Components walks).
	preds, succs, adj []BitSet
	// anc/desc are reflexive transitive closures over data and order
	// edges combined — order edges carry no values but constrain paths.
	anc, desc []BitSet
	// fused packs each node's preds, succs, desc and anc rows contiguously
	// (4·words uint64 per node, in that order) so the fused legality check
	// touches one cache line per member at typical block sizes.
	fused []uint64
}

// scratch holds the per-Graph accumulators the kernel predicates reuse,
// so a legality check allocates nothing. member is reserved for the
// Cut-based wrappers; acc1/acc2/acc3 for the predicate internals.
type scratch struct {
	member, acc1, acc2, acc3 BitSet
}

func newScratch(n int) *scratch {
	return &scratch{member: NewBitSet(n), acc1: NewBitSet(n), acc2: NewBitSet(n), acc3: NewBitSet(n)}
}

// bitTable allocates n bitsets of the given word width in one backing
// slab (one allocation instead of n).
func bitTable(n, words int) []BitSet {
	bs := make([]BitSet, n)
	backing := make([]uint64, n*words)
	for i := range bs {
		bs[i] = backing[i*words : (i+1)*words : (i+1)*words]
	}
	return bs
}

// buildKernel precomputes the constraint tables. Called whenever the
// graph's structure is (re)established — after Build and after Collapse —
// with OpOrder already valid; the sweeps below rely on its topological
// property (consumers before producers, order edges included).
func (g *Graph) buildKernel() {
	n := len(g.Nodes)
	words := (n + 63) / 64
	if words < 2 {
		words = 2 // match NewBitSet's padding; see LegalSet's fast path
	}
	k := &kernel{words: words}
	k.preds = bitTable(n, words)
	k.succs = bitTable(n, words)
	k.adj = bitTable(n, words)
	k.anc = bitTable(n, words)
	k.desc = bitTable(n, words)
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		for _, p := range nd.Preds {
			k.preds[i].Set(p)
			k.adj[i].Set(p)
		}
		for _, s := range nd.Succs {
			k.succs[i].Set(s)
			k.adj[i].Set(s)
		}
	}
	// Topological sweep order for desc (every successor first): output
	// nodes are sinks, then OpOrder (consumers before producers), then
	// input nodes, which are sources.
	order := make([]int, 0, n)
	for i := range g.Nodes {
		if g.Nodes[i].Kind == KindOut {
			order = append(order, i)
		}
	}
	order = append(order, g.OpOrder...)
	for i := range g.Nodes {
		if g.Nodes[i].Kind == KindIn {
			order = append(order, i)
		}
	}
	for _, id := range order {
		d := k.desc[id]
		d.Set(id)
		for _, s := range g.Nodes[id].Succs {
			d.Or(k.desc[s])
		}
		for _, s := range g.Nodes[id].OrderSuccs {
			d.Or(k.desc[s])
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		a := k.anc[id]
		a.Set(id)
		for _, p := range g.Nodes[id].Preds {
			a.Or(k.anc[p])
		}
		for _, p := range g.Nodes[id].OrderPreds {
			a.Or(k.anc[p])
		}
	}
	k.fused = make([]uint64, n*4*words)
	for i := 0; i < n; i++ {
		row := k.fused[i*4*words : (i+1)*4*words]
		copy(row[0*words:], k.preds[i])
		copy(row[1*words:], k.succs[i])
		copy(row[2*words:], k.desc[i])
		copy(row[3*words:], k.anc[i])
	}
	g.kern = k
	g.rebuildForbidSet()
	g.scr = newScratch(n)
}

// collapseQuotient derives the constraint tables of the quotient graph in
// which the members of C have been contracted into the single node rep
// (rep ∈ C; every other member becomes an edge-less tombstone), without
// re-running the O(E·V/64) closure sweeps of buildKernel. The update is
// pure word arithmetic:
//
//	preds′[rep] = (∪_{m∈C} preds[m]) \ C        (succs symmetric)
//	preds′[u]   = preds[u],              preds[u] ∩ C = ∅
//	            = (preds[u] \ C) ∪ {rep} otherwise
//	desc′[rep]  = ((∪_{m∈C} desc[m]) \ C) ∪ {rep}   (anc symmetric)
//	desc′[u]    = desc[u],                    desc[u] ∩ C = ∅
//	            = (desc[u] \ C) ∪ desc′[rep]  otherwise
//
// The closure formula is exact for the quotient DAG: a quotient path from
// u either avoids rep — then it existed in the original graph and avoided
// C, so its endpoint survives in desc[u] \ C — or visits rep, which
// requires u to reach C in the original (desc[u] ∩ C ≠ ∅) and continues
// with anything rep reaches; conversely every original path maps to a
// quotient walk by sending each member to rep, so desc[u] \ C and
// desc′[rep] are both reachable. Tombstone rows (members other than rep,
// and tombstones of earlier collapses, whose rows are already zero) come
// out all-zero, matching buildKernel's convention that nodes absent from
// the topological sweep keep zero rows. The caller must have verified
// that C is convex — contracting a non-convex cut yields a cyclic
// quotient, for which no consistent closure exists.
func (k *kernel) collapseQuotient(member BitSet, rep int) *kernel {
	n := len(k.preds)
	words := k.words
	nk := &kernel{words: words}
	nk.preds = bitTable(n, words)
	nk.succs = bitTable(n, words)
	nk.adj = bitTable(n, words)
	nk.anc = bitTable(n, words)
	nk.desc = bitTable(n, words)

	repP, repS := nk.preds[rep], nk.succs[rep]
	repD, repA := nk.desc[rep], nk.anc[rep]
	member.ForEach(func(id int) {
		repP.Or(k.preds[id])
		repS.Or(k.succs[id])
		repD.Or(k.desc[id])
		repA.Or(k.anc[id])
	})
	for i := 0; i < words; i++ {
		m := member[i]
		repP[i] &^= m
		repS[i] &^= m
		repD[i] &^= m
		repA[i] &^= m
	}
	repD.Set(rep)
	repA.Set(rep)
	for i := 0; i < words; i++ {
		nk.adj[rep][i] = repP[i] | repS[i]
	}

	for id := 0; id < n; id++ {
		if member.Has(id) {
			continue // rep done above; other members stay zero (tombstones)
		}
		rewrite := func(dst, src BitSet, repBit bool, repRow BitSet) {
			hit := false
			for i := 0; i < words; i++ {
				if src[i]&member[i] != 0 {
					hit = true
					break
				}
			}
			if !hit {
				dst.CopyFrom(src)
				return
			}
			for i := 0; i < words; i++ {
				dst[i] = src[i] &^ member[i]
			}
			if repBit {
				dst.Set(rep)
			}
			if repRow != nil {
				dst.Or(repRow)
			}
		}
		rewrite(nk.preds[id], k.preds[id], true, nil)
		rewrite(nk.succs[id], k.succs[id], true, nil)
		rewrite(nk.desc[id], k.desc[id], false, repD)
		rewrite(nk.anc[id], k.anc[id], false, repA)
		for i := 0; i < words; i++ {
			nk.adj[id][i] = nk.preds[id][i] | nk.succs[id][i]
		}
	}

	nk.fused = make([]uint64, n*4*words)
	for i := 0; i < n; i++ {
		row := nk.fused[i*4*words : (i+1)*4*words]
		copy(row[0*words:], nk.preds[i])
		copy(row[1*words:], nk.succs[i])
		copy(row[2*words:], nk.desc[i])
		copy(row[3*words:], nk.anc[i])
	}
	return nk
}

// rebuildForbidSet recomputes the per-graph set of nodes that may never
// join a cut: V+ nodes and Forbidden operation nodes. Restrict views call
// this after widening Forbidden, keeping the shared kernel untouched.
func (g *Graph) rebuildForbidSet() {
	g.forbid = NewBitSet(len(g.Nodes))
	for i := range g.Nodes {
		if g.Nodes[i].Kind != KindOp || g.Nodes[i].Forbidden {
			g.forbid.Set(i)
		}
	}
}

// NewSet returns a fresh bitset sized for this graph's nodes, for callers
// that maintain cut membership incrementally through the set-based
// predicates below.
func (g *Graph) NewSet() BitSet { return NewBitSet(len(g.Nodes)) }

// SetOf fills dst (reset first) with the members of c and returns it; a
// nil or undersized dst is replaced by a fresh set.
func (g *Graph) SetOf(c Cut, dst BitSet) BitSet {
	if len(dst) < g.kern.words {
		dst = g.NewSet()
	} else {
		dst.Reset()
	}
	for _, id := range c {
		dst.Set(id)
	}
	return dst
}

// memberBits loads c into the graph's member scratch set. The two-word
// case accumulates in registers: repeated Set calls are read-modify-write
// chains on the same memory words and show up hot in profiles.
func (g *Graph) memberBits(c Cut) BitSet {
	s := g.scr.member
	if len(s) == 2 {
		var w0, w1 uint64
		for _, id := range c {
			b := uint64(1) << (uint(id) & 63)
			if id < 64 {
				w0 |= b
			} else {
				w1 |= b
			}
		}
		s[0], s[1] = w0, w1
		return s
	}
	s.Reset()
	for _, id := range c {
		s.Set(id)
	}
	return s
}

// InputsSet is Inputs on a membership bitset: |(∪ preds) \ S|.
func (g *Graph) InputsSet(s BitSet) int {
	acc := g.scr.acc1
	acc.Reset()
	k := g.kern
	for wi, w := range s {
		for w != 0 {
			id := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			acc.Or(k.preds[id])
		}
	}
	n := 0
	for i, w := range acc {
		n += bits.OnesCount64(w &^ s[i])
	}
	return n
}

// OutputsSet is Outputs on a membership bitset: members with a data
// successor outside S (nodes, not edges).
func (g *Graph) OutputsSet(s BitSet) int {
	k := g.kern
	n := 0
	for wi, w := range s {
		for w != 0 {
			id := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			for i, sw := range k.succs[id] {
				if sw&^s[i] != 0 {
					n++
					break
				}
			}
		}
	}
	return n
}

// ConvexSet is Convex on a membership bitset: S is convex iff no outside
// node is both reachable from S and reaches S.
func (g *Graph) ConvexSet(s BitSet) bool {
	k := g.kern
	accD, accA := g.scr.acc1, g.scr.acc2
	accD.Reset()
	accA.Reset()
	for wi, w := range s {
		for w != 0 {
			id := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			accD.Or(k.desc[id])
			accA.Or(k.anc[id])
		}
	}
	for i := range accD {
		if accD[i]&accA[i]&^s[i] != 0 {
			return false
		}
	}
	return true
}

// LegalSet is Legal on a membership bitset. The four constraints are
// fused into one sweep over the members — the predecessor, descendant,
// and ancestor unions accumulate side by side, and OUT is counted per
// member — so the hottest call of the whole engine touches each member's
// tables exactly once.
func (g *Graph) LegalSet(s BitSet, nin, nout int) bool {
	k := g.kern
	words := k.words
	s = s[:words]
	if words == 2 {
		// Register-resident fast path: every accumulator lives in a local,
		// so the member loop is pure ALU work with one cache line of table
		// loads per member (the 8-word fused row).
		s0, s1 := s[0], s[1]
		if s0&g.forbid[0] != 0 || s1&g.forbid[1] != 0 {
			return false
		}
		var p0, p1, d0, d1, a0, a1 uint64
		out := 0
		fused := k.fused
		base, w := 0, s0
		for {
			for w != 0 {
				id := base + bits.TrailingZeros64(w)
				w &= w - 1
				row := fused[id*8 : id*8+8 : id*8+8]
				p0 |= row[0]
				p1 |= row[1]
				if row[2]&^s0|row[3]&^s1 != 0 {
					out++
				}
				d0 |= row[4]
				d1 |= row[5]
				a0 |= row[6]
				a1 |= row[7]
			}
			if base == 64 {
				break
			}
			base, w = 64, s1
		}
		if out > nout {
			return false
		}
		if d0&a0&^s0|d1&a1&^s1 != 0 {
			return false
		}
		return bits.OnesCount64(p0&^s0)+bits.OnesCount64(p1&^s1) <= nin
	}
	accP := g.scr.acc1[:words]
	accD := g.scr.acc2[:words]
	accA := g.scr.acc3[:words]
	forbid := g.forbid[:words]
	for i := range accP {
		accP[i], accD[i], accA[i] = 0, 0, 0
	}
	out := 0
	for wi, w := range s {
		if w&forbid[wi] != 0 {
			return false
		}
		for w != 0 {
			id := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			row := k.fused[id*4*words : (id+1)*4*words]
			outside := false
			for i := 0; i < words; i++ {
				accP[i] |= row[i]
				accD[i] |= row[2*words+i]
				accA[i] |= row[3*words+i]
				if row[words+i]&^s[i] != 0 {
					outside = true
				}
			}
			if outside {
				if out++; out > nout {
					return false
				}
			}
		}
	}
	in := 0
	for i, w := range accP {
		if accD[i]&accA[i]&^s[i] != 0 {
			return false
		}
		in += bits.OnesCount64(w &^ s[i])
	}
	return in <= nin
}

// ComponentsSet is Components on a membership bitset: weakly connected
// components over data edges, grown by bitset closure.
func (g *Graph) ComponentsSet(s BitSet) int {
	k := g.kern
	remaining, comp := g.scr.acc1, g.scr.acc2
	remaining.CopyFrom(s)
	n := 0
	for {
		seed := -1
		for wi, w := range remaining {
			if w != 0 {
				seed = wi<<6 + bits.TrailingZeros64(w)
				break
			}
		}
		if seed < 0 {
			return n
		}
		n++
		comp.Reset()
		comp.Set(seed)
		remaining.Unset(seed)
		// Fixed point: absorb every remaining member adjacent to the
		// component. Re-scanning the component is O(|S|) passes worst
		// case, each a handful of word ops — cheap at block sizes.
		for grew := true; grew; {
			grew = false
			for wi, w := range comp {
				for w != 0 {
					id := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					for i, aw := range k.adj[id] {
						if nw := aw & remaining[i]; nw != 0 {
							comp[i] |= nw
							remaining[i] &^= nw
							grew = true
						}
					}
				}
			}
		}
	}
}
