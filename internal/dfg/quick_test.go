package dfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"isex/internal/ir"
)

// randomGraphLocal builds a random single-block function (mirrors the
// generator used in core's tests, kept local to avoid an import cycle).
func randomGraphLocal(rng *rand.Rand, nOps int) *Graph {
	b := ir.NewBuilder("rand", 3)
	vals := append([]ir.Reg{}, b.Fn.Params...)
	pick := func() ir.Reg { return vals[rng.Intn(len(vals))] }
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpXor, ir.OpShl, ir.OpSelect}
	for i := 0; i < nOps; i++ {
		switch rng.Intn(8) {
		case 0:
			vals = append(vals, b.Const(int32(rng.Intn(64))))
		case 1:
			vals = append(vals, b.Load(pick()))
		case 2:
			b.Store(pick(), pick())
		default:
			op := ops[rng.Intn(len(ops))]
			if op.Info().Arity == 3 {
				vals = append(vals, b.Op(op, pick(), pick(), pick()))
			} else {
				vals = append(vals, b.Op(op, pick(), pick()))
			}
		}
	}
	next := b.NewBlock("next")
	b.Jump(next)
	b.SetBlock(next)
	acc := vals[len(vals)-1]
	for i := 0; i < 2; i++ {
		acc = b.Op(ir.OpAdd, acc, vals[rng.Intn(len(vals))])
	}
	b.Ret(acc)
	f := b.Finish()
	g, err := Build(f, f.Entry(), ir.Liveness(f))
	if err != nil {
		panic(err) // builder emits forward edges only
	}
	return g
}

func randomCut(rng *rand.Rand, g *Graph) Cut {
	var c Cut
	for _, id := range g.OpOrder {
		if !g.Nodes[id].Forbidden && rng.Intn(3) == 0 {
			c = append(c, id)
		}
	}
	return c
}

// TestQuickCutInvariants: structural properties of IN/OUT/convexity on
// random cuts of random graphs.
func TestQuickCutInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphLocal(rng, 4+rng.Intn(14))
		c := randomCut(rng, g)
		in, out := g.Inputs(c), g.Outputs(c)
		// OUT never exceeds the cut size; IN never exceeds total pred count.
		if out > len(c) || out < 0 || in < 0 {
			return false
		}
		// The empty cut is trivially legal; singletons are always convex.
		if !g.Convex(Cut{}) {
			return false
		}
		for _, id := range c {
			if !g.Convex(Cut{id}) {
				return false
			}
		}
		// Monotone union: adding all op nodes yields a superset whose
		// components count is at most that of the sub-cut… (weak check:
		// Components never exceeds |cut|).
		if comps := g.Components(c); comps > len(c) || (len(c) > 0 && comps < 1) {
			return false
		}
		// Convexity is invariant under canonical reordering.
		if g.Convex(c) != g.Convex(c.Canon()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// checkKernelAgainstSpec differential-tests the word-parallel kernel
// against the specification predicates on one cut.
func checkKernelAgainstSpec(t *testing.T, g *Graph, c Cut, label string) {
	t.Helper()
	if got, want := g.Inputs(c), g.InputsSpec(c); got != want {
		t.Fatalf("%s: Inputs=%d spec=%d on cut %v", label, got, want, c)
	}
	if got, want := g.Outputs(c), g.OutputsSpec(c); got != want {
		t.Fatalf("%s: Outputs=%d spec=%d on cut %v", label, got, want, c)
	}
	if got, want := g.Convex(c), g.ConvexSpec(c); got != want {
		t.Fatalf("%s: Convex=%v spec=%v on cut %v", label, got, want, c)
	}
	if got, want := g.Components(c), g.ComponentsSpec(c); got != want {
		t.Fatalf("%s: Components=%d spec=%d on cut %v", label, got, want, c)
	}
	for _, lim := range [][2]int{{1, 1}, {2, 1}, {4, 2}, {64, 64}} {
		if got, want := g.Legal(c, lim[0], lim[1]), g.LegalSpec(c, lim[0], lim[1]); got != want {
			t.Fatalf("%s: Legal(%d,%d)=%v spec=%v on cut %v", label, lim[0], lim[1], got, want, c)
		}
	}
	// The set-based API agrees with the Cut-based wrappers (fresh set, so
	// the wrappers' scratch reuse cannot mask a stale-state bug).
	s := g.SetOf(c, nil)
	if g.InputsSet(s) != g.InputsSpec(c) || g.OutputsSet(s) != g.OutputsSpec(c) ||
		g.ConvexSet(s) != g.ConvexSpec(c) || g.ComponentsSet(s) != g.ComponentsSpec(c) ||
		g.LegalSet(s, 4, 2) != g.LegalSpec(c, 4, 2) {
		t.Fatalf("%s: set-based kernel diverges from spec on cut %v", label, c)
	}
}

// TestQuickKernelMatchesSpec: the bitset kernel agrees with the §5
// specification predicates on random cuts of random graphs — which
// include loads and stores, so order edges are exercised — including
// cuts that touch forbidden (barrier) nodes.
func TestQuickKernelMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphLocal(rng, 4+rng.Intn(16))
		for trial := 0; trial < 8; trial++ {
			c := randomCut(rng, g)
			checkKernelAgainstSpec(t, g, c, "random")
			// Also an illegal-by-construction cut including barrier nodes.
			var all Cut
			for _, id := range g.OpOrder {
				if rng.Intn(2) == 0 {
					all = append(all, id)
				}
			}
			checkKernelAgainstSpec(t, g, all, "with-forbidden")
		}
		checkKernelAgainstSpec(t, g, Cut{}, "empty")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickKernelAfterCollapse: the kernel stays consistent with the spec
// on graphs containing collapsed super-nodes, and on Restrict views of
// them (the shapes the iterative selection and the windowed rescue
// actually query).
func TestQuickKernelAfterCollapse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphLocal(rng, 8+rng.Intn(10))
		c := randomCut(rng, g)
		if len(c) == 0 || !g.ConvexSpec(c) {
			return true
		}
		ng, err := g.Collapse(c, "s", 1)
		if err != nil {
			t.Fatalf("collapse of convex cut failed: %v", err)
		}
		for trial := 0; trial < 8; trial++ {
			checkKernelAgainstSpec(t, ng, randomCut(rng, ng), "collapsed")
		}
		n := ng.NumOps()
		if n == 0 {
			return true
		}
		lo := rng.Intn(n)
		view := ng.Restrict(lo, lo+1+rng.Intn(n-lo))
		for trial := 0; trial < 4; trial++ {
			checkKernelAgainstSpec(t, view, randomCut(rng, view), "restricted")
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCollapsePreservesBoundary: after collapsing a legal cut, the
// super-node's degree structure matches the cut's boundary on the
// original graph (distinct external producers = IN side, and it has a
// successor iff the cut had an output).
func TestQuickCollapsePreservesBoundary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphLocal(rng, 6+rng.Intn(10))
		c := randomCut(rng, g)
		if len(c) == 0 || !g.Convex(c) {
			return true // only convex cuts are collapsed in practice
		}
		in, out := g.Inputs(c), g.Outputs(c)
		ng, err := g.Collapse(c, "s", 1)
		if err != nil {
			return false
		}
		var super *Node
		for i := range ng.Nodes {
			if ng.Nodes[i].Name == "s" {
				super = &ng.Nodes[i]
			}
		}
		if super == nil {
			return false
		}
		if len(super.Preds) != in {
			return false
		}
		// The super-node has data successors iff the cut produced outputs.
		return (len(super.Succs) > 0) == (out > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickRestrictSoundness: any cut legal on a Restrict view is legal
// on the original graph with identical IN/OUT.
func TestQuickRestrictSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphLocal(rng, 8+rng.Intn(8))
		n := g.NumOps()
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		view := g.Restrict(lo, hi)
		c := randomCut(rng, view)
		if len(c) == 0 {
			return true
		}
		// Members must be within the window and non-forbidden originally.
		for _, id := range c {
			if g.Nodes[id].Forbidden {
				return false
			}
		}
		return g.Inputs(c) == view.Inputs(c) &&
			g.Outputs(c) == view.Outputs(c) &&
			g.Convex(c) == view.Convex(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
