// Design-space exploration: sweep the register-port constraints
// (Nin × Nout) for one benchmark and print the estimated speedup and
// total datapath area of each point — the trade-off a specialised
// processor designer navigates (§2 of the paper).
//
//	go run ./examples/designspace [kernel]
package main

import (
	"fmt"
	"log"
	"os"

	"isex/internal/core"
	"isex/internal/experiments"
	"isex/internal/latency"
	"isex/internal/report"
	"isex/internal/workload"
)

func main() {
	name := "adpcmencode"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	k := workload.ByName(name)
	if k == nil {
		log.Fatalf("unknown kernel %q (try: adpcmdecode adpcmencode gsmlpc fir viterbi crc32 sha fft)", name)
	}
	model := latency.Default()
	base, err := experiments.BaselineCycles(k, model)
	if err != nil {
		log.Fatal(err)
	}
	m, err := k.Prepare()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: baseline %d cycles\n\n", name, base)

	const ninstr = 8
	t := &report.Table{
		Title:  fmt.Sprintf("design space of %s (up to %d instructions, budget-bounded search)", name, ninstr),
		Header: []string{"Nin", "Nout", "speedup", "instrs", "area (MACs)", "note"},
	}
	for _, nout := range []int{1, 2, 3, 4} {
		for _, nin := range []int{2, 4, 6, 8} {
			if nin < nout {
				continue
			}
			cfg := core.Config{Nin: nin, Nout: nout, Model: model, MaxCuts: 1_000_000}
			sel := core.SelectIterative(m, ninstr, cfg)
			var area float64
			for _, s := range sel.Instructions {
				area += s.Est.Area
			}
			speedup := float64(base) / float64(base-sel.TotalMerit)
			note := ""
			if sel.Stats.Aborted {
				note = "lower bound"
			}
			t.AddRow(nin, nout, fmt.Sprintf("%.3f", speedup), len(sel.Instructions),
				fmt.Sprintf("%.3f", area), note)
		}
	}
	fmt.Print(t.String())
	fmt.Println("\nreading guide: speedup saturates once the ports cover the kernel's")
	fmt.Println("natural cut shapes; area buys diminishing returns beyond that point.")
}
