// Package core implements the paper's contribution: identification of
// maximal-speedup convex cuts of basic-block dataflow graphs under
// register-port constraints (§5–§6), and the two selection strategies
// (optimal, §6.2, and iterative, §6.3) that pick up to Ninstr custom
// instructions across all basic blocks of a program.
package core

import (
	"fmt"
	"sync"

	"isex/internal/dfg"
	"isex/internal/latency"
)

// Estimate is the merit M(S) of a cut and its ingredients (§7): the
// accumulated software latency of its operations, the ceiling of the
// hardware critical path as the latency of the new instruction, the
// cycles saved per execution, and that gain weighted by the block's
// dynamic execution count.
type Estimate struct {
	In, Out    int
	SWCycles   int64
	HWCycles   int
	Saved      int64
	Freq       int64
	Merit      int64
	Area       float64
	Components int
	Size       int
}

func (e Estimate) String() string {
	return fmt.Sprintf("size=%d in=%d out=%d sw=%d hw=%d saved=%d freq=%d merit=%d area=%.2f comps=%d",
		e.Size, e.In, e.Out, e.SWCycles, e.HWCycles, e.Saved, e.Freq, e.Merit, e.Area, e.Components)
}

// weight returns the profiling weight of a block (unprofiled blocks count
// as a single execution, so identification still works without a profile).
func weight(freq int64) int64 {
	if freq <= 0 {
		return 1
	}
	return freq
}

// evalScratch is Evaluate's reusable state: a membership bitset and a
// longest-path table indexed by node ID. Pooled so Evaluate — called once
// per candidate by the baselines and the enumerators — allocates nothing
// in steady state.
type evalScratch struct {
	in   dfg.BitSet
	long []float64
}

var evalPool = sync.Pool{New: func() any { return new(evalScratch) }}

func (s *evalScratch) fit(g *dfg.Graph) {
	if n := len(g.Nodes); len(s.long) < n {
		s.in = dfg.NewBitSet(n)
		s.long = make([]float64, n)
	} else {
		s.in.Reset()
	}
}

// Evaluate computes the Estimate of an arbitrary cut. It is the reference
// (non-incremental) implementation; the search maintains the same
// quantities incrementally and is checked against this in tests.
func Evaluate(g *dfg.Graph, c dfg.Cut, model *latency.Model) Estimate {
	sc := evalPool.Get().(*evalScratch)
	defer evalPool.Put(sc)
	sc.fit(g)
	for _, id := range c {
		sc.in.Set(id)
	}
	est := Estimate{
		In:         g.InputsSet(sc.in),
		Out:        g.OutputsSet(sc.in),
		Freq:       g.Block.Freq,
		Components: g.ComponentsSet(sc.in),
		Size:       len(c),
	}
	// Software cost: plain sum of per-op latencies (single-issue, §7).
	for _, id := range c {
		est.SWCycles += int64(model.SW(g.Nodes[id].Op))
		est.Area += model.Area(g.Nodes[id].Op)
	}
	// Hardware cost: critical path over data edges within the cut.
	// Nodes are processed in reverse search order (producers before
	// consumers... search order has consumers first, so iterate OpOrder
	// backwards) accumulating longest paths. sc.long needs no zeroing:
	// a member's entry is written before any consumer (later in this
	// sweep) reads it, and only members are read.
	long := sc.long
	var crit float64
	for i := len(g.OpOrder) - 1; i >= 0; i-- {
		id := g.OpOrder[i]
		if !sc.in.Has(id) {
			continue
		}
		best := 0.0
		for _, p := range g.Nodes[id].Preds {
			if sc.in.Has(p) && long[p] > best {
				best = long[p]
			}
		}
		long[id] = best + model.HW(g.Nodes[id].Op)
		if long[id] > crit {
			crit = long[id]
		}
	}
	est.HWCycles = latency.CyclesOf(crit)
	// Any non-empty instruction occupies the pipeline for at least one
	// cycle, even if its datapath is shallower than a cycle.
	if est.Size > 0 && est.HWCycles < 1 {
		est.HWCycles = 1
	}
	est.Saved = est.SWCycles - int64(est.HWCycles)
	est.Merit = est.Saved * weight(est.Freq)
	return est
}
