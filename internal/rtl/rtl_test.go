package rtl

import (
	"strings"
	"testing"

	"isex/internal/core"
	"isex/internal/ir"
	"isex/internal/minic"
	"isex/internal/passes"
)

func sampleAFU() *ir.AFUDef {
	// out0 = sel(a > b, a - b, b - a); out1 = (a + b) >> 1
	return &ir.AFUDef{
		Name:     "afu0_f_entry",
		NumIn:    2,
		NumSlots: 8,
		Body: []ir.AFUOp{
			{Op: ir.OpGt, A: 0, B: 1, Dst: 2},
			{Op: ir.OpSub, A: 0, B: 1, Dst: 3},
			{Op: ir.OpSub, A: 1, B: 0, Dst: 4},
			{Op: ir.OpSelect, A: 2, B: 3, C: 4, Dst: 5},
			{Op: ir.OpAdd, A: 0, B: 1, Dst: 6},
			{Op: ir.OpConst, Imm: 1, Dst: 7},
			{Op: ir.OpAShr, A: 6, B: 7, Dst: 7},
		},
		OutSlots: []int{5, 7},
		Latency:  1,
		Area:     0.2,
	}
}

func TestVerilogStructure(t *testing.T) {
	v, err := Verilog(sampleAFU())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module afu0_f_entry (",
		"input  wire [31:0] in0",
		"input  wire [31:0] in1",
		"output wire [31:0] out0",
		"output wire [31:0] out1",
		"wire [31:0] s2 = {31'b0, $signed(in0) > $signed(in1)};",
		"wire [31:0] s5 = (s2 != 32'b0) ? s3 : s4;",
		"32'h00000001",
		">>>",
		"assign out0 = s5;",
		"assign out1 = s7;",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q:\n%s", want, v)
		}
	}
	// Balanced module/endmodule, no undefined op leaked.
	if strings.Count(v, "\nmodule ") != 1 || strings.Count(v, "\nendmodule") != 1 {
		t.Error("module structure wrong")
	}
}

func TestVerilogAllOps(t *testing.T) {
	ops := []ir.Op{
		ir.OpConst, ir.OpCopy, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpNeg, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot, ir.OpShl, ir.OpAShr,
		ir.OpLShr, ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe,
		ir.OpULt, ir.OpULe, ir.OpUGt, ir.OpUGe, ir.OpSelect, ir.OpMin, ir.OpMax,
		ir.OpAbs, ir.OpSExt8, ir.OpSExt16, ir.OpZExt8, ir.OpZExt16,
	}
	d := &ir.AFUDef{Name: "all_ops", NumIn: 3}
	slot := 3
	for _, op := range ops {
		d.Body = append(d.Body, ir.AFUOp{Op: op, A: 0, B: 1, C: 2, Imm: 42, Dst: slot})
		slot++
	}
	d.NumSlots = slot
	d.OutSlots = []int{slot - 1}
	d.Latency = 1
	v, err := Verilog(d)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(v, "wire [31:0] s") != len(ops) {
		t.Errorf("expected %d wires", len(ops))
	}
}

func TestVerilogRejectsBarrier(t *testing.T) {
	d := &ir.AFUDef{Name: "bad", NumIn: 1, NumSlots: 2,
		Body:     []ir.AFUOp{{Op: ir.OpLoad, A: 0, Dst: 1}},
		OutSlots: []int{1}}
	if _, err := Verilog(d); err == nil {
		t.Error("load lowered to Verilog")
	}
}

func TestTestbench(t *testing.T) {
	d := sampleAFU()
	vectors := [][]int32{{5, 3}, {-7, 9}, {0, 0}, {2147483647, -1}}
	tb, err := Testbench(d, vectors)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module afu0_f_entry_tb;",
		"afu0_f_entry dut (.in0(in0), .in1(in1), .out0(out0), .out1(out1));",
		"$finish;",
		"PASS",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("testbench missing %q", want)
		}
	}
	// One assertion pair per vector per output.
	if got := strings.Count(tb, "errors = errors + 1"); got != len(vectors)*len(d.OutSlots) {
		t.Errorf("assertions = %d, want %d", got, len(vectors)*len(d.OutSlots))
	}
	// Expected values come from the reference interpreter: spot check
	// vector {5,3}: out0 = 2, out1 = 4.
	if !strings.Contains(tb, "32'h00000002") || !strings.Contains(tb, "32'h00000004") {
		t.Error("expected values not embedded")
	}
	if _, err := Testbench(d, [][]int32{{1}}); err == nil {
		t.Error("short vector accepted")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"afu0_f_entry": "afu0_f_entry",
		"afu 0/f":      "afu_0_f",
		"0abc":         "afu_0abc",
		"":             "afu",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestEndToEndAFUVerilog: run identification on a real kernel and emit
// Verilog + testbench for every AFU created.
func TestEndToEndAFUVerilog(t *testing.T) {
	src := `
int f(int a, int b) {
    int s = a + b;
    if (s > 32767) s = 32767;
    if (s < -32768) s = -32768;
    return s;
}`
	m, err := minic.Compile(src, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Run(m, passes.Options{}); err != nil {
		t.Fatal(err)
	}
	sel := core.SelectIterative(m, 1, core.Config{Nin: 2, Nout: 1})
	if len(sel.Instructions) == 0 {
		t.Fatal("nothing selected")
	}
	if _, _, err := core.ApplySelection(m, sel.Instructions, nil); err != nil {
		t.Fatal(err)
	}
	for i := range m.AFUs {
		v, err := Verilog(&m.AFUs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(v, "module ") {
			t.Error("no module emitted")
		}
		tb, err := Testbench(&m.AFUs[i], [][]int32{{1, 2}, {30000, 30000}})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(tb, "dut (") {
			t.Error("no dut instantiated")
		}
	}
}
