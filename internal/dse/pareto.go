package dse

import "sort"

// ParetoPoint is one non-dominated grid point of a (benchmark, target)
// report, the machine-readable answer to "which configurations are
// worth building". Nin/Nout identify the cheapest constraint point the
// metrics were observed at (ties keep every witness).
type ParetoPoint struct {
	Nin     int     `json:"nin"`
	Nout    int     `json:"nout"`
	Ninstr  int     `json:"ninstr"`
	Speedup float64 `json:"speedup"`
	Clamped bool    `json:"clamped,omitempty"`
	Area    float64 `json:"area"`
	Merit   int64   `json:"merit"`
}

// dominates reports whether a is at least as good as b on every
// objective — speedup maximized, area and instruction count minimized —
// and strictly better on at least one. Port counts are not objectives:
// they are the configuration axis, and a loose point that merely ties a
// tight one does not dominate it (both survive; the report keeps every
// witness of a frontier value).
func dominates(a, b Cell) bool {
	if a.Speedup < b.Speedup || a.Area > b.Area || a.Ninstr > b.Ninstr {
		return false
	}
	return a.Speedup > b.Speedup || a.Area < b.Area || a.Ninstr < b.Ninstr
}

// paretoFrontier filters the cells of one (benchmark, target) to the
// non-dominated set over (speedup ↑, area ↓, ninstr ↓), sorted by
// ascending area (then ninstr, speedup, nin, nout — a total order, so
// the frontier is deterministic for deterministic cells).
func paretoFrontier(cells []Cell) []ParetoPoint {
	var front []ParetoPoint
	for i, c := range cells {
		dominated := false
		for j, d := range cells {
			if i != j && dominates(d, c) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		front = append(front, ParetoPoint{
			Nin:     c.Nin,
			Nout:    c.Nout,
			Ninstr:  c.Ninstr,
			Speedup: c.Speedup,
			Clamped: c.Clamped,
			Area:    c.Area,
			Merit:   c.Merit,
		})
	}
	sort.Slice(front, func(i, j int) bool {
		a, b := front[i], front[j]
		if a.Area != b.Area {
			return a.Area < b.Area
		}
		if a.Ninstr != b.Ninstr {
			return a.Ninstr < b.Ninstr
		}
		if a.Speedup != b.Speedup {
			return a.Speedup < b.Speedup
		}
		if a.Nin != b.Nin {
			return a.Nin < b.Nin
		}
		return a.Nout < b.Nout
	})
	return front
}
