package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonlEvent is the JSONL wire form of an Event. Field meanings follow
// the Kind documentation; zero payload fields are omitted.
type jsonlEvent struct {
	T    int64  `json:"t_ns"`
	Ring int32  `json:"ring"`
	Kind string `json:"kind"`
	Span int64  `json:"span,omitempty"`
	A    int64  `json:"a,omitempty"`
	B    int64  `json:"b,omitempty"`
	C    int64  `json:"c,omitempty"`
	Tag  string `json:"tag,omitempty"`
}

// WriteJSONL writes events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		je := jsonlEvent{T: e.T, Ring: e.Ring, Kind: e.Kind.String(),
			Span: e.Span, A: e.A, B: e.B, C: e.C, Tag: e.Tag}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// kindByName is the lazily built reverse of kindNames.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, KindCount)
	for i := 0; i < KindCount; i++ {
		m[Kind(i).String()] = Kind(i)
	}
	return m
}()

// KindByName resolves a wire name ("incumbent", "steal", ...) back to
// its Kind; ok is false for unknown names. The decode half of
// Kind.String, used by the JSONL reader in internal/obs/analyze.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// ParseJSONL reads a WriteJSONL stream back into events. Unknown kind
// names are an error — the exhaustiveness guard keeps the name table
// total, so an unknown name means a version mismatch, not a soft skip.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		k, ok := KindByName(je.Kind)
		if !ok {
			return nil, fmt.Errorf("obs: trace line %d: unknown event kind %q", line, je.Kind)
		}
		out = append(out, Event{T: je.T, Ring: je.Ring, Kind: k,
			Span: je.Span, A: je.A, B: je.B, C: je.C, Tag: je.Tag})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// instant events on one process, one thread per flight-recorder ring,
// loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int32          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeArgNames maps each kind's A/B/C payload onto named trace args.
// Total over KindCount — the exhaustiveness guard test fails when a new
// kind forgets its decode entry ("" marks an unused slot).
var chromeArgNames = map[Kind][3]string{
	KSearchStart:   {"ops", "workers", "parent_span"},
	KSearchEnd:     {"status", "merit", "cuts"},
	KIncumbent:     {"merit", "cuts", "rank"},
	KPrune:         {"rank", "", ""},
	KBound:         {"rank", "incumbent", ""},
	KSteal:         {"count", "victim", "deque_depth"},
	KDonate:        {"rank", "", ""},
	KResplit:       {"depth", "children", ""},
	KSpecLaunch:    {"m", "collapse", ""},
	KSpecAdopt:     {"m", "", ""},
	KSpecDiscard:   {"reason", "", ""},
	KStop:          {"status", "", ""},
	KRescue:        {"found", "merit", "cuts"},
	KCollapse:      {"round", "cut_size", ""},
	KWarmSeed:      {"merit", "", ""},
	KPanic:         {"attempt", "", ""},
	KGreedy:        {"found", "merit", "candidates"},
	KStall:         {"worker", "samples", ""},
	KDedup:         {"hit", "m", ""},
	KMemoCollision: {"m", "", ""},
	KToggle:        {"delta", "total", ""},
	KRestart:       {"restart", "seed_merit", "seed_size"},
	KRacerPublish:  {"merit", "restart", "cut_size"},
	KRacerAdopt:    {"merit", "prev_merit", ""},
	KStageStart:    {"parent_span", "ninstr", ""},
	KStageEnd:      {"selected", "total_merit", "ident_calls"},
	KCellStart:     {"nin", "nout", "ninstr"},
	KCellEnd:       {"nin", "nout", "merit"},
	KSeedPut:       {"merit", "cut_size", ""},
	KSeedHit:       {"merit", "cut_size", ""},
	KSeedReject:    {"rejected", "", ""},
}

// KindArgNames returns the named meanings of kind k's A/B/C payload
// slots ("" = unused). Shared with the analyzer so attribution reports
// and the Chrome re-export decode payloads identically.
func KindArgNames(k Kind) [3]string { return chromeArgNames[k] }

// KindHasArgNames reports whether kind k has an arg-name mapping at all.
// KindArgNames returns the zero value for unmapped kinds, so the
// exhaustiveness guard needs the membership test to catch a new kind
// that forgot its entry.
func KindHasArgNames(k Kind) bool {
	_, ok := chromeArgNames[k]
	return ok
}

// chrome converts an Event to its trace_event form: a thread-scoped
// instant on tid = ring id, so the per-worker interleaving is visible
// on separate tracks.
func (e Event) chrome() chromeEvent {
	ce := chromeEvent{
		Name:  e.Kind.String(),
		Phase: "i",
		TS:    float64(e.T) / 1e3,
		PID:   1,
		TID:   e.Ring,
		Scope: "t",
	}
	names := chromeArgNames[e.Kind]
	args := make(map[string]any, 5)
	for i, v := range [3]int64{e.A, e.B, e.C} {
		if names[i] != "" {
			args[names[i]] = v
		}
	}
	if e.Span != 0 {
		args["span"] = e.Span
	}
	if e.Tag != "" {
		args["tag"] = e.Tag
	}
	if len(args) > 0 {
		ce.Args = args
	}
	return ce
}

// WriteChromeTrace writes events as a Chrome trace_event JSON array for
// chrome://tracing / Perfetto.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, e := range events {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		data, err := json.Marshal(e.chrome())
		if err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
