package baseline

import (
	"sort"

	"isex/internal/core"
	"isex/internal/dfg"
	"isex/internal/greedy"
	"isex/internal/ir"
	"isex/internal/latency"
)

func modelOrDefault(m *latency.Model) *latency.Model {
	if m != nil {
		return m
	}
	return latency.Default()
}

func instrIndexes(g *dfg.Graph, c dfg.Cut) []int {
	var out []int
	for _, id := range c {
		if g.Nodes[id].InstrIndex >= 0 {
			out = append(out, g.Nodes[id].InstrIndex)
		}
	}
	sort.Ints(out)
	return out
}

// Clubbing greedily clusters the operations of a graph into "clubs" under
// explicit n-input / m-output limits, following the linear-complexity
// scheme of Baleani et al. (ref. 16). The algorithm itself lives in
// internal/greedy so that core's degradation ladder can reuse it; this
// wrapper keeps the historical baseline API.
func Clubbing(g *dfg.Graph, nin, nout int) []dfg.Cut {
	return greedy.Clubbing(g, nin, nout)
}

// SelectClubbing selects up to ninstr clubs across all blocks, best merit
// first, under the (Nin, Nout) limits of cfg.
func SelectClubbing(m *ir.Module, ninstr int, cfg core.Config) core.SelectionResult {
	res := core.SelectionResult{}
	if ninstr < 1 || cfg.Nout < 1 {
		return res
	}
	var cands []core.Selected
	for _, f := range m.Funcs {
		li := ir.Liveness(f)
		for _, b := range f.Blocks {
			g, err := dfg.Build(f, b, li)
			if err != nil {
				continue // malformed block contributes no clubs
			}
			res.IdentCalls++
			for _, c := range Clubbing(g, cfg.Nin, cfg.Nout) {
				est := core.Evaluate(g, c, modelOrDefault(cfg.Model))
				if est.Merit <= 0 {
					continue
				}
				cands = append(cands, core.Selected{
					Fn: f, Block: b, InstrIndexes: instrIndexes(g, c), Est: est,
					ChosenAt: -1,
				})
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].Est.Merit > cands[j].Est.Merit
	})
	if len(cands) > ninstr {
		cands = cands[:ninstr]
	}
	for _, c := range cands {
		res.Instructions = append(res.Instructions, c)
		res.TotalMerit += c.Est.Merit
	}
	return res
}
