package core

import "sync"

// CPUPool is a process-wide CPU admission budget shared by every layer
// that fans work out: the selection scheduler's block-level tasks and
// their intra-block worker pools (Config.Speculate), the Parallel
// drivers' per-block search goroutines (Config.Pool), and the DSE sweep
// driver's grid tasks (internal/dse) all draw slots from one pot, so
// stacking sweep-level on search-level parallelism bounds total
// concurrency instead of multiplying it.
//
// Demand tasks block in Acquire until at least one slot frees and then
// take up to their want; speculative tasks only ever take a single slot
// and only while at least one other slot stays free, so the serial
// demand stream is never starved by speculation. Holders must never
// block on the pool while holding slots (no hold-and-wait), which keeps
// the pool deadlock-free by construction.
type CPUPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	free   int
	slots  int // capacity, for leak accounting
	closed bool
}

// NewCPUPool returns a pool of the given capacity (at least 1).
func NewCPUPool(slots int) *CPUPool {
	if slots < 1 {
		slots = 1
	}
	p := &CPUPool{free: slots, slots: slots}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Acquire blocks until at least one slot is free (or the pool closes,
// returning 0) and takes min(want, free) slots, at least one.
func (p *CPUPool) Acquire(want int) int {
	if want < 1 {
		want = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.free == 0 && !p.closed {
		p.cond.Wait()
	}
	if p.closed {
		return 0
	}
	n := want
	if n > p.free {
		n = p.free
	}
	p.free -= n
	return n
}

// TryAcquireSpec takes one slot for a speculative task, but only while a
// second slot remains free for demand work; it never blocks.
func (p *CPUPool) TryAcquireSpec() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.free < 2 {
		return false
	}
	p.free--
	return true
}

// Release returns n slots to the pool.
func (p *CPUPool) Release(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	p.free += n
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Close wakes every blocked Acquire with 0 slots (used on abandon). It
// cannot assert full occupancy itself: Close runs before the owner's
// wg.Wait precisely so that blocked Acquires unblock, while holders are
// still releasing their tokens via defers — leak detection is Leaked(),
// checked after every holder has exited.
func (p *CPUPool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Leaked returns the number of tokens still held. Only meaningful once
// every acquirer has finished (after the owner's wg.Wait): a positive
// value then means a release was lost — e.g. a panic path that skipped
// its deferred release — and the pool would have throttled forever in a
// long-lived service.
func (p *CPUPool) Leaked() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.slots - p.free
}
