package ir

// RegSet is a bitset over a function's virtual registers.
type RegSet []uint64

// NewRegSet returns an empty set sized for n registers.
func NewRegSet(n int) RegSet { return make(RegSet, (n+63)/64) }

// Has reports whether r is in the set.
func (s RegSet) Has(r Reg) bool {
	if r < 0 || int(r) >= len(s)*64 {
		return false
	}
	return s[r>>6]&(1<<(uint(r)&63)) != 0
}

// Add inserts r and reports whether the set changed.
func (s RegSet) Add(r Reg) bool {
	if r < 0 {
		return false
	}
	w, m := r>>6, uint64(1)<<(uint(r)&63)
	if s[w]&m != 0 {
		return false
	}
	s[w] |= m
	return true
}

// Remove deletes r from the set.
func (s RegSet) Remove(r Reg) {
	if r < 0 {
		return
	}
	s[r>>6] &^= 1 << (uint(r) & 63)
}

// UnionWith adds all members of t and reports whether the set changed.
func (s RegSet) UnionWith(t RegSet) bool {
	changed := false
	for i := range t {
		if nv := s[i] | t[i]; nv != s[i] {
			s[i] = nv
			changed = true
		}
	}
	return changed
}

// Copy returns an independent copy of the set.
func (s RegSet) Copy() RegSet {
	c := make(RegSet, len(s))
	copy(c, s)
	return c
}

// Count returns the number of members.
func (s RegSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
