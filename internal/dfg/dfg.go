// Package dfg builds the per-basic-block dataflow graphs G+ of §5 of the
// paper. Operation nodes V are the instructions of the block; additional
// nodes V+ represent the block's input variables (values live into the
// block or produced by instructions of other blocks) and output variables
// (values live out of the block or consumed by its terminator). Edges are
// data dependences.
//
// Barrier instructions (loads, stores, calls, allocas, globals, existing
// custom instructions) are ordinary graph nodes — they appear in Fig. 3
// of the paper just like arithmetic nodes — but are marked Forbidden and
// can never be part of a cut, because the AFU has no memory port and no
// architecturally visible state (§2).
package dfg

import (
	"fmt"
	"sort"
	"strings"

	"isex/internal/ir"
)

// Kind discriminates node kinds.
type Kind uint8

const (
	KindOp  Kind = iota // an instruction of the block (member of V)
	KindIn              // an input variable node (member of V+)
	KindOut             // an output variable node (member of V+)
	// KindDead is a tombstone left behind by CollapseIncr: a former cut
	// member folded into its super-node. Dead nodes keep their ID (the
	// incremental collapse preserves the ID space so closure tables can be
	// updated in place) but have no edges, never appear in OpOrder, and are
	// always forbidden.
	KindDead
)

// Node is one vertex of G+.
type Node struct {
	ID   int
	Kind Kind
	// Op is the operation for KindOp nodes (OpInvalid for V+ nodes and
	// collapsed super-nodes).
	Op ir.Op
	// InstrIndex is the node's instruction position in the block, or -1
	// for V+ nodes. Collapsed super-nodes carry the largest instruction
	// index of their members.
	InstrIndex int
	// Reg is the incoming register for KindIn, the outgoing register for
	// KindOut, and the primary destination for KindOp (NoReg if none).
	Reg ir.Reg
	// Forbidden marks nodes that may not join any cut: barrier operations
	// and super-nodes of previously selected cuts (§6.3).
	Forbidden bool
	// Preds are producer node IDs; Succs are consumer node IDs. These are
	// data dependences; they define IN(S) and OUT(S).
	Preds, Succs []int
	// OrderPreds/OrderSuccs are memory-ordering dependences between
	// barrier nodes (store→load, load→store, store→store, call⇄any).
	// They carry no values — they never count toward IN/OUT — but paths
	// through them constrain convexity and scheduling, so that a
	// collapsed cut can always be issued as one contiguous instruction.
	OrderPreds, OrderSuccs []int
	// Name labels V+ nodes and super-nodes for printing.
	Name string
	// SuperLatency is the hardware cycle count of a collapsed super-node
	// (0 for ordinary nodes); SuperMembers lists the instruction indices
	// that were collapsed into it.
	SuperLatency int
	SuperMembers []int
}

// Graph is the G+ of one basic block.
type Graph struct {
	Fn    *ir.Function
	Block *ir.Block
	Nodes []Node
	// OpOrder lists operation-node IDs in the search order of §6.1: for
	// every edge (producer u → consumer v), v appears before u. This is
	// the paper's "topological sort" (consumers first).
	OpOrder []int
	// pos[id] is the rank of an op node in OpOrder (-1 for V+ nodes).
	pos []int
	// kern holds the precomputed word-parallel constraint tables (see
	// bitset.go); it is immutable and shared with Restrict views.
	kern *kernel
	// forbid marks nodes that may never join a cut (V+ nodes and
	// Forbidden ops); per-graph because Restrict widens it.
	forbid BitSet
	// scr holds the kernel's reusable accumulators; per-graph, so
	// constraint queries on one Graph are not safe for concurrent use.
	scr *scratch
}

// NumOps returns the number of operation nodes (|V|).
func (g *Graph) NumOps() int { return len(g.OpOrder) }

// Pos returns the search-order rank of op node id.
func (g *Graph) Pos(id int) int { return g.pos[id] }

// Build constructs G+ for block b of f. li must be the result of
// ir.Liveness(f); it determines the output variable nodes. It returns an
// error (instead of crashing) when the resulting operation graph is not
// acyclic — which cannot happen for IR produced by the front end, but can
// for hand-written or corrupted textual IR.
func Build(f *ir.Function, b *ir.Block, li *ir.LiveInfo) (*Graph, error) {
	g := &Graph{Fn: f, Block: b}
	// lastDef tracks, during the forward walk, the node currently
	// defining each register.
	lastDef := map[ir.Reg]int{}
	inputNode := map[ir.Reg]int{}

	addNode := func(n Node) int {
		n.ID = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
		return n.ID
	}
	addEdge := func(from, to int) {
		g.Nodes[from].Succs = append(g.Nodes[from].Succs, to)
		g.Nodes[to].Preds = append(g.Nodes[to].Preds, from)
	}
	addOrderEdge := func(from, to int) {
		if from == to {
			return
		}
		for _, s := range g.Nodes[from].OrderSuccs {
			if s == to {
				return
			}
		}
		g.Nodes[from].OrderSuccs = append(g.Nodes[from].OrderSuccs, to)
		g.Nodes[to].OrderPreds = append(g.Nodes[to].OrderPreds, from)
	}
	// Memory-ordering state: the last writer node and the readers seen
	// since. Calls both read and write; allocas only produce an address.
	lastWriter := -1
	var readers []int
	inputFor := func(r ir.Reg) int {
		if id, ok := inputNode[r]; ok {
			return id
		}
		id := addNode(Node{Kind: KindIn, InstrIndex: -1, Reg: r, Name: fmt.Sprintf("in:r%d", r)})
		inputNode[r] = id
		return id
	}

	for i := range b.Instrs {
		in := &b.Instrs[i]
		var primary ir.Reg = ir.NoReg
		if len(in.Dsts) > 0 {
			primary = in.Dsts[0]
		}
		id := addNode(Node{
			Kind:       KindOp,
			Op:         in.Op,
			InstrIndex: i,
			Reg:        primary,
			Forbidden:  !in.Op.Pure(),
		})
		seen := map[int]bool{}
		for _, a := range in.Args {
			var src int
			if d, ok := lastDef[a]; ok {
				src = d
			} else {
				src = inputFor(a)
			}
			// A node reading the same value twice contributes one edge;
			// IN/OUT count nodes, not edges (§5).
			if !seen[src] {
				seen[src] = true
				addEdge(src, id)
			}
		}
		for _, d := range in.Dsts {
			lastDef[d] = id
		}
		switch in.Op {
		case ir.OpLoad:
			if lastWriter >= 0 {
				addOrderEdge(lastWriter, id)
			}
			readers = append(readers, id)
		case ir.OpStore, ir.OpCall:
			if lastWriter >= 0 {
				addOrderEdge(lastWriter, id)
			}
			for _, r := range readers {
				addOrderEdge(r, id)
			}
			readers = readers[:0]
			lastWriter = id
		}
	}

	// Output variable nodes: final definers of registers that are live
	// out of the block or consumed by its terminator.
	liveOut := li.Out[b.Index]
	needOut := map[ir.Reg]bool{}
	for r := range lastDef {
		if liveOut.Has(r) {
			needOut[r] = true
		}
	}
	if b.Term.Kind == ir.TermBranch {
		if _, ok := lastDef[b.Term.Cond]; ok {
			needOut[b.Term.Cond] = true
		}
	}
	if b.Term.Kind == ir.TermRet && b.Term.HasVal {
		if _, ok := lastDef[b.Term.Val]; ok {
			needOut[b.Term.Val] = true
		}
	}
	// Deterministic order.
	outRegs := make([]ir.Reg, 0, len(needOut))
	for r := range needOut {
		outRegs = append(outRegs, r)
	}
	sort.Slice(outRegs, func(i, j int) bool { return outRegs[i] < outRegs[j] })
	for _, r := range outRegs {
		def := lastDef[r]
		// Only the defining instruction's value escapes; V+ output nodes
		// for multi-dst instructions are keyed per register.
		id := addNode(Node{Kind: KindOut, InstrIndex: -1, Reg: r, Name: fmt.Sprintf("out:r%d", r)})
		addEdge(def, id)
	}

	if err := g.rebuildOrder(); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildAll builds graphs for every block of every function in m. It stops
// at the first block whose graph cannot be ordered (malformed IR).
func BuildAll(m *ir.Module) (map[*ir.Block]*Graph, error) {
	out := map[*ir.Block]*Graph{}
	for _, f := range m.Funcs {
		li := ir.Liveness(f)
		for _, b := range f.Blocks {
			g, err := Build(f, b, li)
			if err != nil {
				return nil, err
			}
			out[b] = g
		}
	}
	return out, nil
}

// rebuildOrder recomputes OpOrder: a topological order of the operation
// nodes with consumers before producers (§6.1). Determinism: among ready
// nodes, the largest instruction index is emitted first, which for a
// freshly built graph reproduces exactly the reverse instruction order.
// A cycle among the operation nodes (possible only for malformed input,
// e.g. a hand-edited textual IR or a non-convex collapse) is reported as
// an error, never a panic.
func (g *Graph) rebuildOrder() error {
	if err := g.computeOrder(); err != nil {
		return err
	}
	g.buildKernel()
	return nil
}

// computeOrder is rebuildOrder without the kernel rebuild, for callers
// (CollapseIncr) that derive the constraint tables incrementally instead.
func (g *Graph) computeOrder() error {
	// Count, for each op node, unplaced op-node consumers.
	remaining := map[int]int{}
	var ready []int
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Kind != KindOp {
			continue
		}
		c := 0
		for _, s := range n.Succs {
			if g.Nodes[s].Kind == KindOp {
				c++
			}
		}
		c += len(n.OrderSuccs) // order edges connect op nodes only
		remaining[n.ID] = c
		if c == 0 {
			ready = append(ready, n.ID)
		}
	}
	order := make([]int, 0, len(remaining))
	for len(ready) > 0 {
		// Pick the ready node with the largest instruction index.
		best := 0
		for i := 1; i < len(ready); i++ {
			if g.Nodes[ready[i]].InstrIndex > g.Nodes[ready[best]].InstrIndex {
				best = i
			}
		}
		id := ready[best]
		ready[best] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, id)
		release := func(p int) {
			if g.Nodes[p].Kind != KindOp {
				return
			}
			remaining[p]--
			if remaining[p] == 0 {
				ready = append(ready, p)
			}
		}
		for _, p := range g.Nodes[id].Preds {
			release(p)
		}
		for _, p := range g.Nodes[id].OrderPreds {
			release(p)
		}
	}
	if len(order) != len(remaining) {
		return fmt.Errorf("dfg: cycle in operation graph of %s/%s (%d of %d nodes orderable)",
			g.Fn.Name, g.Block.Name, len(order), len(remaining))
	}
	g.OpOrder = order
	g.pos = make([]int, len(g.Nodes))
	for i := range g.pos {
		g.pos[i] = -1
	}
	for rank, id := range order {
		g.pos[id] = rank
	}
	return nil
}

// Dot renders the graph in Graphviz format, optionally highlighting a cut.
func (g *Graph) Dot(cut []int) string {
	inCut := map[int]bool{}
	for _, id := range cut {
		inCut[id] = true
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Block.Name)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Kind == KindDead {
			continue
		}
		label := n.Name
		shape := "ellipse"
		switch n.Kind {
		case KindOp:
			label = n.Op.String()
			if n.Op == ir.OpConst {
				label = fmt.Sprintf("%d", g.Block.Instrs[n.InstrIndex].Imm)
			}
			if n.Name != "" {
				label = n.Name
			}
			shape = "box"
			if n.Forbidden {
				shape = "box3d"
			}
		case KindIn:
			shape = "invtriangle"
		case KindOut:
			shape = "triangle"
		}
		attrs := fmt.Sprintf("label=%q shape=%s", label, shape)
		if inCut[n.ID] {
			attrs += " style=filled fillcolor=lightblue"
		}
		fmt.Fprintf(&sb, "  n%d [%s];\n", n.ID, attrs)
	}
	for i := range g.Nodes {
		for _, s := range g.Nodes[i].Succs {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", g.Nodes[i].ID, s)
		}
		for _, s := range g.Nodes[i].OrderSuccs {
			fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed];\n", g.Nodes[i].ID, s)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
