package core

import (
	"isex/internal/dfg"
)

// EnumerateBest is the brute-force reference for FindBestCut: it examines
// every subset of non-forbidden operation nodes, checks the constraints
// with the specification predicates of package dfg, and returns the best
// cut. It is exponential without pruning and is only usable on small
// graphs; tests use it to validate the pruned search.
func EnumerateBest(g *dfg.Graph, cfg Config) Result {
	model := cfg.model()
	var candidates []int
	for _, id := range g.OpOrder {
		if !g.Nodes[id].Forbidden {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) > 24 {
		panic("core: EnumerateBest limited to 24 candidate nodes")
	}
	var best Result
	n := len(candidates)
	for mask := 1; mask < 1<<n; mask++ {
		var cut dfg.Cut
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cut = append(cut, candidates[i])
			}
		}
		if !g.Legal(cut, cfg.Nin, cfg.Nout) {
			continue
		}
		est := Evaluate(g, cut, model)
		if est.Merit > 0 && (!best.Found || est.Merit > best.Est.Merit) {
			best.Found = true
			best.Cut = cut.Canon()
			best.Est = est
		}
	}
	return best
}

// CountLegalCuts counts, by brute force, the subsets passing the output
// and convexity checks (any Nin), and the subsets that are fully legal.
// Used by tests to validate search statistics.
func CountLegalCuts(g *dfg.Graph, cfg Config) (outConvex, legal int64) {
	var candidates []int
	for _, id := range g.OpOrder {
		if !g.Nodes[id].Forbidden {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) > 24 {
		panic("core: CountLegalCuts limited to 24 candidate nodes")
	}
	n := len(candidates)
	for mask := 1; mask < 1<<n; mask++ {
		var cut dfg.Cut
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cut = append(cut, candidates[i])
			}
		}
		if g.Outputs(cut) <= cfg.Nout && g.Convex(cut) {
			outConvex++
			if g.Inputs(cut) <= cfg.Nin {
				legal++
			}
		}
	}
	return outConvex, legal
}
