package workload

// Additional MediaBench-representative kernels widening the suite:
// a G.721-style ADPCM codec step (quantize / inverse-quantize / sign-LMS
// predictor update, as in MediaBench's g721), an 8×8 fixed-point DCT
// (the jpeg/mpeg2 transform), and SAD-based motion estimation (mpeg2
// encoder). They enrich the Fig. 8 block population with shapes the
// first eight kernels lack: table-threshold scans, butterfly networks
// and abs-difference reduction trees.

const g721Source = `
// Quantization thresholds and reconstruction levels (Q10-ish fixed point).
int qtab[7] = {124, 256, 388, 520, 650, 780, 910};
int rlevels[8] = {60, 190, 320, 450, 580, 710, 840, 970};
int wtab[8] = {-12, 18, 41, 64, 112, 198, 355, 1122};

int g721_in[512];
int g721_code[512];
int g721_rec[512];

int pred0 = 0;
int pred1 = 0;
int stepg = 256;

// quan: index of the first threshold above v (linear scan, as in g721.c).
int quan(int v) {
    int i;
    for (i = 0; i < 7; i++) {
        if (v < (qtab[i] * stepg) >> 8) {
            return i;
        }
    }
    return 7;
}

void g721_encode(int n) {
    int i;
    for (i = 0; i < n; i++) {
        int x = g721_in[i];
        // Prediction from two poles (shift-based leaky predictor).
        int pr = (pred0 * 3 - pred1) >> 1;
        int d = x - pr;
        int sign = 0;
        if (d < 0) { sign = 8; d = 0 - d; }
        int q = quan(d);
        g721_code[i] = q | sign;

        // Inverse quantization.
        int dq = (rlevels[q] * stepg) >> 8;
        if (sign) dq = 0 - dq;

        // Reconstruction and clamping.
        int rec = pr + dq;
        if (rec > 32767) rec = 32767;
        if (rec < -32768) rec = -32768;
        g721_rec[i] = rec;

        // Sign-sign LMS pole update with leakage.
        int e = dq;
        int g0 = pred0 - (pred0 >> 8);
        if (e > 0) { g0 = g0 + 32; }
        if (e < 0) { g0 = g0 - 32; }
        if (g0 > 12288) g0 = 12288;
        if (g0 < -12288) g0 = -12288;
        int g1 = pred1 - (pred1 >> 8);
        int ep = e * (pred0 < 0 ? -1 : 1);
        if (ep > 0) { g1 = g1 + 16; }
        if (ep < 0) { g1 = g1 - 16; }
        if (g1 > 8192) g1 = 8192;
        if (g1 < -8192) g1 = -8192;
        pred1 = g1;
        pred0 = g0 + (rec >> 4);

        // Step-size adaptation from the W table with leakage.
        int st = stepg + ((wtab[q] * stepg) >> 11) - (stepg >> 7);
        if (st < 64) st = 64;
        if (st > 16384) st = 16384;
        stepg = st;
    }
}
`

// G721 is the g721-style codec step.
func G721() *Kernel {
	return &Kernel{
		Name:    "g721",
		Source:  g721Source,
		Entry:   "g721_encode",
		Args:    []int32{512},
		Inputs:  map[string][]int32{"g721_in": testSignal(512, 0x721, 12000)},
		Outputs: []string{"g721_code", "g721_rec", "pred0", "pred1", "stepg"},
	}
}

const dctSource = `
int block[64];

// One dimension of the LLM-style integer DCT, applied to rows then
// columns (jpeg fdct, 13-bit fixed-point constants).
void dct_1d(int base, int stride) {
    int s0 = block[base + 0 * stride];
    int s1 = block[base + 1 * stride];
    int s2 = block[base + 2 * stride];
    int s3 = block[base + 3 * stride];
    int s4 = block[base + 4 * stride];
    int s5 = block[base + 5 * stride];
    int s6 = block[base + 6 * stride];
    int s7 = block[base + 7 * stride];

    int t0 = s0 + s7;
    int t7 = s0 - s7;
    int t1 = s1 + s6;
    int t6 = s1 - s6;
    int t2 = s2 + s5;
    int t5 = s2 - s5;
    int t3 = s3 + s4;
    int t4 = s3 - s4;

    int u0 = t0 + t3;
    int u3 = t0 - t3;
    int u1 = t1 + t2;
    int u2 = t1 - t2;

    block[base + 0 * stride] = (u0 + u1) >> 1;
    block[base + 4 * stride] = (u0 - u1) >> 1;
    block[base + 2 * stride] = (u2 * 4433 + u3 * 10703) >> 13;
    block[base + 6 * stride] = (u3 * 4433 - u2 * 10703) >> 13;

    int v0 = (t4 * 2446 + t7 * 16819) >> 13;
    int v1 = (t5 * 6813 + t6 * 13623) >> 13;
    int v2 = (t6 * 6813 - t5 * 13623) >> 13;
    int v3 = (t7 * 2446 - t4 * 16819) >> 13;

    block[base + 1 * stride] = v0 + v1;
    block[base + 7 * stride] = v3 - v2;
    block[base + 5 * stride] = v0 - v1;
    block[base + 3 * stride] = v3 + v2;
}

void dct8x8() {
    int i;
    for (i = 0; i < 8; i++) { dct_1d(i * 8, 1); }
    for (i = 0; i < 8; i++) { dct_1d(i, 8); }
}
`

// DCT is the 8×8 integer DCT (rows then columns).
func DCT() *Kernel {
	px := testSignal(64, 0xDC7, 128)
	return &Kernel{
		Name:    "dct",
		Source:  dctSource,
		Entry:   "dct8x8",
		Inputs:  map[string][]int32{"block": px},
		Outputs: []string{"block"},
	}
}

const sadSource = `
int ref[400];
int cur[256];
int sads[9];
int bestoff[2];

// Sum of absolute differences over a 16x16 block for the nine candidate
// motion vectors (-1..1)^2 within a 20x20 reference window; keeps the
// best offset (mpeg2 motion estimation inner loop).
void motion_search() {
    int best = 0x7FFFFFFF;
    int dy;
    int dx;
    for (dy = 0; dy < 3; dy++) {
        for (dx = 0; dx < 3; dx++) {
            int acc = 0;
            int y;
            for (y = 0; y < 16; y++) {
                int x;
                for (x = 0; x < 16; x++) {
                    int a = cur[y * 16 + x];
                    int b = ref[(y + dy) * 20 + (x + dx)];
                    acc = acc + abs(a - b);
                }
            }
            sads[dy * 3 + dx] = acc;
            if (acc < best) {
                best = acc;
                bestoff[0] = dx - 1;
                bestoff[1] = dy - 1;
            }
        }
    }
}
`

// SAD is the motion-estimation kernel.
func SAD() *Kernel {
	return &Kernel{
		Name:   "sad",
		Source: sadSource,
		Entry:  "motion_search",
		Inputs: map[string][]int32{
			"ref": testSignal(400, 0x5AD, 255),
			"cur": testSignal(256, 0x5AE, 255),
		},
		Outputs: []string{"sads", "bestoff"},
	}
}

const vlcSource = `
// Variable-length coding (mpeg2-style bit packing): each symbol looks up
// a (code, length) pair and appends it to a 32-bit big-endian bit buffer
// that is flushed word-wise. The hot dataflow is the shift/or/compare
// bit-buffer update.
int vlc_codes[16] = {2, 6, 14, 30, 62, 126, 254, 510, 3, 7, 15, 31, 63, 127, 255, 511};
int vlc_lens[16] = {2, 3, 4, 5, 6, 7, 8, 9, 2, 3, 4, 5, 6, 7, 8, 9};

int symbols[512];
int packed[256];
int packedcount[1];

void vlc_pack(int n) {
    int acc = 0;       // holds exactly nbits valid low bits
    int nbits = 0;
    int outp = 0;
    int i;
    for (i = 0; i < n; i++) {
        int s = symbols[i] & 15;
        int code = vlc_codes[s];
        int len = vlc_lens[s];
        int room = 32 - nbits;
        if (len >= room) {
            // Flush: the top 'room' bits of the code complete a word.
            int spill = len - room;
            int word = (acc << (room & 31)) | lshr(code, spill);
            packed[outp] = word;
            outp = outp + 1;
            acc = code & ((1 << spill) - 1);
            nbits = spill;
        } else {
            acc = (acc << len) | code;
            nbits = nbits + len;
        }
    }
    if (nbits > 0) {
        packed[outp] = acc << (32 - nbits);
        outp = outp + 1;
    }
    packedcount[0] = outp;
}
`

// VLC is the variable-length-coding bit packer.
func VLC() *Kernel {
	syms := testSignal(512, 0x71C, 1<<30)
	for i := range syms {
		syms[i] &= 15
	}
	return &Kernel{
		Name:    "vlc",
		Source:  vlcSource,
		Entry:   "vlc_pack",
		Args:    []int32{512},
		Inputs:  map[string][]int32{"symbols": syms},
		Outputs: []string{"packed", "packedcount"},
	}
}
