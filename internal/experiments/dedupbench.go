package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"isex/internal/core"
	"isex/internal/ir"
	"isex/internal/minic"
	"isex/internal/passes"
	"isex/internal/progen"
)

// This file measures the cross-block dedup memo of internal/core
// (Config.Dedup, DESIGN.md §14) on the workload it exists for: modules
// where the same dataflow structure recurs across many blocks. The
// corpus is synthetic but honest about that shape — each progen seed's
// program is compiled several times, the copies' functions renamed, and
// everything merged into one module, so every block appears `copies`
// times under different function names. Real firmware gets there via
// unrolled loops, inlined helpers and copy-pasted kernels; the generator
// gets there deterministically.
//
// Rows come in (driver × dedup) pairs; the dedup-off row is the
// reference. Wall time is the full identify-stage selection run;
// CutsConsidered counts actual search work (a dedup hit contributes
// nothing — that is the win being measured). The report regenerates in
// CI (BENCH_PR7.json) and fails on any selection divergence between the
// paired rows, so it re-certifies the bit-identity contract on every
// change.

// DedupBenchEntry is one measured (driver, dedup) configuration,
// aggregated over the whole corpus.
type DedupBenchEntry struct {
	Name   string `json:"name"`
	Driver string `json:"driver"` // "optimal" or "iterative"
	Dedup  bool   `json:"dedup"`
	// NsPerOp is the wall-clock cost of one identify-stage pass over the
	// full corpus.
	NsPerOp float64 `json:"ns_per_op"`
	// CutsConsidered is the summed search work; with dedup on, adopted
	// blocks contribute none.
	CutsConsidered int64 `json:"cuts_considered"`
	IdentCalls     int   `json:"ident_calls"`
	DedupHits      int   `json:"dedup_hits"`
	// SharedGroups counts the reported shareable-datapath groups across
	// the corpus (0 with dedup off).
	SharedGroups int    `json:"shared_groups"`
	TotalMerit   int64  `json:"total_merit"`
	Instructions int    `json:"instructions"`
	Status       string `json:"status"`
	// SpeedupVsRef is ns/op(dedup off) ÷ ns/op(this row), set on the
	// dedup-on rows.
	SpeedupVsRef float64 `json:"speedup_vs_ref,omitempty"`
}

// DedupBenchReport is the BENCH_PR7.json payload.
type DedupBenchReport struct {
	Schema    string            `json:"schema"`
	Generated string            `json:"generated"`
	GoVersion string            `json:"go"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	NumCPU    int               `json:"num_cpu"`
	Seeds     []int64           `json:"seeds"`
	Copies    int               `json:"copies"`
	Nin       int               `json:"nin"`
	Nout      int               `json:"nout"`
	Ninstr    int               `json:"ninstr"`
	Blocks    int               `json:"blocks"`
	Entries   []DedupBenchEntry `json:"entries"`
}

var (
	dedupBenchSeeds  = []int64{11, 23, 47}
	dedupBenchCopies = 4
	dedupBenchNinstr = 4
)

// dedupCorpus builds one module per seed: the seed's program compiled
// dedupBenchCopies times, the copies' functions renamed, all merged.
// Copies of the same source share identical globals, so the merged
// module is self-consistent; it is only ever identified over, never
// executed, and no block is profiled (every frequency weighs 1 — the
// dedup layer must cope with uniform weights too).
func dedupCorpus(seeds []int64, copies int) ([]*ir.Module, int, error) {
	var mods []*ir.Module
	blocks := 0
	for _, seed := range seeds {
		src := progen.Generate(progen.Config{Seed: seed}).Source
		var merged *ir.Module
		for c := 0; c < copies; c++ {
			m, err := minic.Compile(src, minic.Options{})
			if err != nil {
				return nil, 0, fmt.Errorf("experiments: seed %d: %w", seed, err)
			}
			if err := passes.Run(m, passes.Options{}); err != nil {
				return nil, 0, fmt.Errorf("experiments: seed %d: %w", seed, err)
			}
			if c == 0 {
				merged = m
				continue
			}
			for _, f := range m.Funcs {
				f.Name = fmt.Sprintf("%s_r%d", f.Name, c)
				merged.Funcs = append(merged.Funcs, f)
			}
		}
		for _, f := range merged.Funcs {
			blocks += len(f.Blocks)
		}
		mods = append(mods, merged)
	}
	return mods, blocks, nil
}

// DedupBench measures identify-stage selection over the repeated-blocks
// corpus with the dedup memo off (reference) and on, for both greedy
// drivers, and returns the report. It errors out if a dedup-on run's
// selection diverges from its reference, or if dedup never fires.
func DedupBench() (*DedupBenchReport, error) {
	mods, blocks, err := dedupCorpus(dedupBenchSeeds, dedupBenchCopies)
	if err != nil {
		return nil, err
	}
	rep := &DedupBenchReport{
		Schema:    "isex-dedup-bench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Seeds:     dedupBenchSeeds,
		Copies:    dedupBenchCopies,
		Nin:       2,
		Nout:      1,
		Ninstr:    dedupBenchNinstr,
		Blocks:    blocks,
	}

	type driver struct {
		name string
		sel  func(*ir.Module, int, core.Config) core.SelectionResult
	}
	drivers := []driver{
		{"iterative", core.SelectIterative},
		{"optimal", core.SelectOptimal},
	}
	measure := func(name string, d driver, cfg core.Config) (DedupBenchEntry, []core.SelectionResult, error) {
		var results []core.SelectionResult
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results = results[:0]
				for _, m := range mods {
					results = append(results, d.sel(m, dedupBenchNinstr, cfg))
				}
			}
		})
		e := DedupBenchEntry{
			Name:    name,
			Driver:  d.name,
			Dedup:   cfg.Dedup,
			NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
			Status:  core.Exhaustive.String(),
		}
		for _, res := range results {
			if res.Status != core.Exhaustive {
				return e, nil, fmt.Errorf("experiments: %s not exhaustive: %v", name, res.Status)
			}
			e.CutsConsidered += res.Stats.CutsConsidered
			e.IdentCalls += res.IdentCalls
			e.DedupHits += res.DedupHits
			e.SharedGroups += len(res.SharedInstructions)
			e.TotalMerit += res.TotalMerit
			e.Instructions += len(res.Instructions)
		}
		return e, results, nil
	}
	check := func(name string, got, want []core.SelectionResult) error {
		for mi := range want {
			a, b := want[mi], got[mi]
			if a.TotalMerit != b.TotalMerit || len(a.Instructions) != len(b.Instructions) {
				return fmt.Errorf("experiments: %s module %d diverged: merit %d (%d instrs), reference %d (%d instrs)",
					name, mi, b.TotalMerit, len(b.Instructions), a.TotalMerit, len(a.Instructions))
			}
			for i := range a.Instructions {
				x, y := a.Instructions[i], b.Instructions[i]
				if x.Fn.Name != y.Fn.Name || x.Block.Name != y.Block.Name || x.Est != y.Est {
					return fmt.Errorf("experiments: %s module %d instruction %d diverged: %s/%s vs reference %s/%s",
						name, mi, i, y.Fn.Name, y.Block.Name, x.Fn.Name, x.Block.Name)
				}
			}
		}
		return nil
	}

	for _, d := range drivers {
		off := core.Config{Nin: rep.Nin, Nout: rep.Nout}
		on := off
		on.Dedup = true
		ref, refRes, err := measure(d.name+"/dedup=off", d, off)
		if err != nil {
			return nil, err
		}
		rep.Entries = append(rep.Entries, ref)
		e, res, err := measure(d.name+"/dedup=on", d, on)
		if err != nil {
			return nil, err
		}
		if err := check(e.Name, res, refRes); err != nil {
			return nil, err
		}
		if e.DedupHits == 0 {
			return nil, fmt.Errorf("experiments: %s: no dedup hits on the repeated-blocks corpus", e.Name)
		}
		if e.NsPerOp > 0 {
			e.SpeedupVsRef = ref.NsPerOp / e.NsPerOp
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *DedupBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DedupBenchTable renders the report for terminal output.
func DedupBenchTable(r *DedupBenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cross-block dedup benchmark — %d seed(s) × %d copies (%d blocks, Nin=%d Nout=%d), %s %s/%s, %d CPU\n\n",
		len(r.Seeds), r.Copies, r.Blocks, r.Nin, r.Nout, r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)
	fmt.Fprintf(&sb, "%-22s %12s %12s %6s %6s %7s %8s %10s\n",
		"selection", "ms/op", "cuts", "ident", "hits", "shared", "merit", "speedup")
	for _, e := range r.Entries {
		speed := ""
		if e.SpeedupVsRef > 0 {
			speed = fmt.Sprintf("%.2fx", e.SpeedupVsRef)
		}
		fmt.Fprintf(&sb, "%-22s %12.2f %12d %6d %6d %7d %8d %10s\n",
			e.Name, e.NsPerOp/1e6, e.CutsConsidered, e.IdentCalls,
			e.DedupHits, e.SharedGroups, e.TotalMerit, speed)
	}
	return sb.String()
}
