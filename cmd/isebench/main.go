// Command isebench regenerates the paper's evaluation: the Fig. 3
// motivational analysis, the Fig. 7 search trace, the Fig. 8 scaling
// study, the Fig. 11 algorithm comparison, and the §8 run-time and area
// summaries, plus the pruning ablation (an extension). Output is plain
// text, one section per figure.
//
// Usage:
//
//	isebench                  # everything, default budgets
//	isebench -fig 11 -measure # only Fig. 11, with simulator validation
//	isebench -fig 11 -workers 8 -parallel -dedup -warmstart -prune
//	                          # Fig. 11 with the engine optimizations on
//	                          # (same numbers, less wall clock)
//	isebench -budget 10000000 # spend more search effort
//	isebench -fig dse -dsejson PARETO.json
//	                          # design-space-exploration sweep over the
//	                          # (constraints × ninstr × benchmark ×
//	                          # target) grid; the JSON is deterministic
//	                          # (byte-identical across worker counts)
//	isebench -fig dsebench -dsebenchjson BENCH_PR9.json
//	                          # cold serial vs warm-started parallel
//	                          # sweep at identical per-cell selections
//	isebench -fig bench -benchjson BENCH_PR2.json
//	                          # constraint-kernel microbenchmarks, written
//	                          # as machine-readable JSON for run-to-run
//	                          # comparison
//	isebench -fig parbench -parjson BENCH_PR3.json
//	                          # serial vs work-stealing parallel B&B on the
//	                          # largest benchmark block
//	isebench -fig selbench -seljson BENCH_PR4.json
//	                          # cold serial vs speculative scheduled greedy
//	                          # selection (optimal and iterative drivers)
//	isebench -fig obsbench -obsjson BENCH_PR5.json
//	                          # telemetry overhead: probe off (A/A) vs
//	                          # metrics-only vs full flight-recorder tracing
//	isebench -fig dedupbench -dedupjson BENCH_PR7.json
//	                          # cross-block dedup on a repeated-blocks
//	                          # corpus: identify-stage wall time and search
//	                          # work with the memo off (reference) vs on
//	isebench -fig klbench -kljson BENCH_PR8.json
//	                          # the ISEGEN-style iterative racer vs the
//	                          # racer-less ladder on exploding blocks at
//	                          # 2/1, 4/2 and 8/4 ports: merit, gap to the
//	                          # proven optimum, and time-to-best
//	isebench -fig analyzebench -analyzejson BENCH_PR10.json
//	                          # causal-span A/A overhead (span IDs are
//	                          # always on; the pair bounds what they can
//	                          # cost) plus analyzer cost and determinism
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"isex/internal/dse"
	"isex/internal/experiments"
	"isex/internal/latency"
)

// cliOpts carries every flag value; one struct instead of a parameter
// per figure keeps run() extensible.
type cliOpts struct {
	budget   int64
	measure  bool
	optimal  bool
	benches  []string
	benchSet bool // -benchmarks given explicitly
	deadline time.Duration

	// Fig. 11 engine knobs (result-preserving; wall clock only).
	workers   int
	parallel  bool
	speculate bool
	dedup     bool
	isegen    bool
	warmstart bool
	prune     bool

	// DSE sweep axes.
	targets     []string
	sweepMode   string
	benchJSON   string
	parJSON     string
	selJSON     string
	obsJSON     string
	dedupJSON   string
	klJSON      string
	analyzeJSON string
	dseJSON     string
	dseBenJSON  string
}

func main() {
	var o cliOpts
	fig := flag.String("fig", "all", "which figure to regenerate: 3, 5, 7, 8, 11, runtime, area, tradeoff, vliw, ifconv, ablation, bench, parbench, selbench, obsbench, dedupbench, klbench, analyzebench, dse, dsebench, all")
	flag.Int64Var(&o.budget, "budget", experiments.DefaultBudget, "cut budget per identification call")
	flag.BoolVar(&o.measure, "measure", false, "Fig. 11: additionally patch and measure on the cycle simulator")
	flag.BoolVar(&o.optimal, "optimal", false, "Fig. 11: include the Optimal selection (slow on large blocks)")
	benches := flag.String("benchmarks", "adpcmdecode,adpcmencode,gsmlpc", "comma-separated benchmark list for Fig. 11 and the DSE sweep (sweep default: adpcmdecode,adpcmencode)")
	flag.DurationVar(&o.deadline, "deadline", 0, "Fig. 11: wall-clock budget per selection call (e.g. 2s; 0 = none); tripped cells are marked * as lower bounds")
	flag.IntVar(&o.workers, "workers", 0, "Fig. 11: per-search worker count (0 = serial); DSE sweep: admission-pool size")
	flag.BoolVar(&o.parallel, "parallel", false, "Fig. 11: search a selection's blocks concurrently")
	flag.BoolVar(&o.speculate, "speculate", false, "Fig. 11: speculative work-stealing selection scheduler")
	flag.BoolVar(&o.dedup, "dedup", false, "Fig. 11: cross-block structural dedup")
	flag.BoolVar(&o.isegen, "isegen", false, "Fig. 11 / DSE: race the Kernighan-Lin toggle engine on exploding blocks (DSE: trades strict reproducibility for anytime quality)")
	flag.BoolVar(&o.warmstart, "warmstart", false, "Fig. 11: seed each search with a windowed heuristic incumbent")
	flag.BoolVar(&o.prune, "prune", false, "Fig. 11: enable the sound merit-bound and input-count prunings")
	targets := flag.String("targets", "paper", "comma-separated hardware-target profiles for the DSE sweep (among "+strings.Join(latency.TargetNames(), ",")+")")
	flag.StringVar(&o.sweepMode, "sweepmode", "warm", "DSE sweep mode: warm (shared seeds/dedup, parallel) or cold (dedicated serial reference)")
	flag.StringVar(&o.benchJSON, "benchjson", "", "with -fig bench (or all): write the constraint-kernel benchmark report to this file as JSON (e.g. BENCH_PR2.json)")
	flag.StringVar(&o.parJSON, "parjson", "", "with -fig parbench (or all): write the parallel B&B benchmark report to this file as JSON (e.g. BENCH_PR3.json)")
	flag.StringVar(&o.selJSON, "seljson", "", "with -fig selbench (or all): write the selection scheduler benchmark report to this file as JSON (e.g. BENCH_PR4.json)")
	flag.StringVar(&o.obsJSON, "obsjson", "", "with -fig obsbench (or all): write the telemetry overhead benchmark report to this file as JSON (e.g. BENCH_PR5.json)")
	flag.StringVar(&o.dedupJSON, "dedupjson", "", "with -fig dedupbench (or all): write the cross-block dedup benchmark report to this file as JSON (e.g. BENCH_PR7.json)")
	flag.StringVar(&o.klJSON, "kljson", "", "with -fig klbench (or all): write the iterative racer benchmark report to this file as JSON (e.g. BENCH_PR8.json)")
	flag.StringVar(&o.analyzeJSON, "analyzejson", "", "with -fig analyzebench (or all): write the span-ID/analyzer benchmark report to this file as JSON (e.g. BENCH_PR10.json)")
	flag.StringVar(&o.dseJSON, "dsejson", "", "with -fig dse (or all): write the deterministic sweep/Pareto report to this file as JSON")
	flag.StringVar(&o.dseBenJSON, "dsebenchjson", "", "with -fig dsebench: write the cold-vs-warm sweep benchmark report to this file as JSON (e.g. BENCH_PR9.json)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "benchmarks" {
			o.benchSet = true
		}
	})
	o.benches = splitList(*benches)
	o.targets = splitList(*targets)
	want := func(name string) bool { return *fig == "all" || *fig == name }
	if err := run(want, o); err != nil {
		fmt.Fprintln(os.Stderr, "isebench:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func run(want func(string) bool, o cliOpts) error {
	section := func(s string) { fmt.Println(); fmt.Println(s); fmt.Println() }

	if want("bench") || o.benchJSON != "" {
		rep, err := experiments.KernelBench()
		if err != nil {
			return err
		}
		section(experiments.KernelBenchTable(rep))
		if o.benchJSON != "" {
			if err := rep.WriteJSON(o.benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", o.benchJSON)
		}
	}

	if want("parbench") || o.parJSON != "" {
		rep, err := experiments.ParBench()
		if err != nil {
			return err
		}
		section(experiments.ParBenchTable(rep))
		if o.parJSON != "" {
			if err := rep.WriteJSON(o.parJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", o.parJSON)
		}
	}

	if want("selbench") || o.selJSON != "" {
		rep, err := experiments.SelBench(experiments.SelBenchDefault())
		if err != nil {
			return err
		}
		section(experiments.SelBenchTable(rep))
		if o.selJSON != "" {
			if err := rep.WriteJSON(o.selJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", o.selJSON)
		}
	}

	if want("obsbench") || o.obsJSON != "" {
		rep, err := experiments.ObsBench()
		if err != nil {
			return err
		}
		section(experiments.ObsBenchTable(rep))
		if o.obsJSON != "" {
			if err := rep.WriteJSON(o.obsJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", o.obsJSON)
		}
	}

	if want("dedupbench") || o.dedupJSON != "" {
		rep, err := experiments.DedupBench()
		if err != nil {
			return err
		}
		section(experiments.DedupBenchTable(rep))
		if o.dedupJSON != "" {
			if err := rep.WriteJSON(o.dedupJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", o.dedupJSON)
		}
	}

	if want("klbench") || o.klJSON != "" {
		rep, err := experiments.KLBench()
		if err != nil {
			return err
		}
		section(experiments.KLBenchTable(rep))
		if o.klJSON != "" {
			if err := rep.WriteJSON(o.klJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", o.klJSON)
		}
	}

	if want("analyzebench") || o.analyzeJSON != "" {
		rep, err := experiments.AnalyzeBench()
		if err != nil {
			return err
		}
		section(experiments.AnalyzeBenchTable(rep))
		if o.analyzeJSON != "" {
			if err := rep.WriteJSON(o.analyzeJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", o.analyzeJSON)
		}
	}

	if want("dse") || o.dseJSON != "" {
		opt := dseOptions(o)
		rep, stats, err := dse.Sweep(context.Background(), opt)
		if err != nil {
			return err
		}
		section(experiments.DSETable(rep, stats))
		if o.dseJSON != "" {
			data, err := rep.Bytes()
			if err != nil {
				return err
			}
			if err := os.WriteFile(o.dseJSON, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", o.dseJSON)
		}
	}

	if want("dsebench") || o.dseBenJSON != "" {
		rep, err := experiments.DSEBench(dseOptions(o))
		if err != nil {
			return err
		}
		section(experiments.DSEBenchTable(rep))
		if o.dseBenJSON != "" {
			if err := rep.WriteJSON(o.dseBenJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", o.dseBenJSON)
		}
	}

	if want("3") {
		rows, err := experiments.Fig3(o.budget)
		if err != nil {
			return err
		}
		section(experiments.Fig3Table(rows))
	}
	if want("5") {
		tree, err := experiments.Fig5Tree()
		if err != nil {
			return err
		}
		section("Fig. 5/7 — the search tree on the Fig. 4 example (Nout=1)\n\n" + tree)
	}
	if want("7") {
		r, err := experiments.Fig7()
		if err != nil {
			return err
		}
		section(experiments.Fig7Table(r))
	}
	if want("8") {
		points, err := experiments.Fig8(o.budget)
		if err != nil {
			return err
		}
		section(experiments.Fig8Series(points))
		within, total := experiments.Fig8WithinPolynomialBand(points)
		fmt.Printf("%d/%d blocks within the N^4 band (paper: all practical cases polynomial)\n", within, total)
	}
	if want("11") {
		opt := experiments.DefaultCompareOptions()
		opt.Benchmarks = o.benches
		opt.Budget = o.budget
		opt.Measure = o.measure
		opt.Deadline = o.deadline
		opt.Workers = o.workers
		opt.Parallel = o.parallel
		opt.Speculate = o.speculate
		opt.Dedup = o.dedup
		opt.ISEGen = o.isegen
		opt.WarmStart = o.warmstart
		opt.PruneInputs = o.prune
		opt.PruneMerit = o.prune
		if !o.optimal {
			opt.Methods = []experiments.Method{
				experiments.MethodIterative, experiments.MethodClubbing, experiments.MethodMaxMISO,
			}
		}
		rows, err := experiments.Compare(opt)
		if err != nil {
			return err
		}
		section(experiments.ComparisonTable(rows, opt.Methods, o.measure))
	}
	if want("runtime") {
		rows, err := experiments.Runtime(
			[]string{"adpcmdecode", "adpcmencode", "gsmlpc"},
			[][2]int{{2, 1}, {4, 2}, {8, 4}}, 16, o.budget)
		if err != nil {
			return err
		}
		section(experiments.RuntimeTable(rows))
	}
	if want("area") {
		rows, err := experiments.Area(
			[]string{"adpcmdecode", "adpcmencode", "gsmlpc"}, 4, 2, 16, o.budget)
		if err != nil {
			return err
		}
		section(experiments.AreaTable(rows))
	}
	if want("tradeoff") {
		rows, err := experiments.AreaTradeoff("adpcmdecode", 4, 2, 8,
			[]float64{0.1, 0.25, 0.5, 1.0, 2.0, 4.0}, o.budget)
		if err != nil {
			return err
		}
		section(experiments.AreaTradeoffTable(rows))
	}
	if want("vliw") {
		rows, err := experiments.VLIWStudy("adpcmdecode", 4, 2, 8, []int{1, 2, 4, 8}, o.budget)
		if err != nil {
			return err
		}
		section(experiments.VLIWTable(rows))
	}
	if want("ifconv") {
		rows, err := experiments.IfConvAblation(
			[]string{"adpcmdecode", "adpcmencode"}, 4, 2, 8, o.budget)
		if err != nil {
			return err
		}
		section(experiments.IfConvTable(rows))
	}
	if want("ablation") {
		rows, err := experiments.Ablation(
			[]string{"adpcmdecode", "adpcmencode"},
			[][2]int{{2, 1}, {4, 2}}, o.budget)
		if err != nil {
			return err
		}
		section(experiments.AblationTable(rows))
	}
	fmt.Println(strings.Repeat("-", 72))
	return nil
}

// dseOptions maps the CLI flags onto a sweep configuration, starting
// from the sweep defaults: the Fig. 11 benchmark list only overrides
// the sweep's own default when given explicitly (the sweep defaults to
// the ADPCM pair; gsmlpc is expensive at loose constraints).
func dseOptions(o cliOpts) dse.Options {
	opt := dse.DefaultOptions()
	if o.benchSet {
		opt.Benchmarks = o.benches
	}
	if len(o.targets) > 0 {
		opt.Targets = o.targets
	}
	opt.Budget = o.budget
	if o.workers > 0 {
		opt.Workers = o.workers
	}
	opt.Cold = o.sweepMode == "cold"
	opt.ISEGen = o.isegen
	return opt
}
