package core

import (
	"fmt"
	"strings"

	"isex/internal/dfg"
)

// This file reproduces Figs. 5 and 7 of the paper literally: the abstract
// search tree of the identification algorithm, with every node labelled
// by its cut (a bitstring over the topological order) and annotated as
// passed, failed, or never considered. It re-derives the tree with the
// specification predicates of package dfg rather than instrumenting the
// optimized searcher, so it doubles as an independent cross-check of the
// search statistics.

// TraceStatus classifies a search-tree node.
type TraceStatus uint8

const (
	// TracePassed: the cut satisfied the output-port and convexity checks.
	TracePassed TraceStatus = iota
	// TraceFailed: a check failed; the subtree below is eliminated.
	TraceFailed
	// TraceSkipped: inside an eliminated subtree — never considered.
	TraceSkipped
	// TraceSame: a 0-branch node; represents the same cut as its parent.
	TraceSame
)

func (s TraceStatus) String() string {
	switch s {
	case TracePassed:
		return "passed"
	case TraceFailed:
		return "failed"
	case TraceSkipped:
		return "not considered"
	case TraceSame:
		return "same cut"
	}
	return "?"
}

// TraceNode is one node of the search tree (Fig. 5).
type TraceNode struct {
	// Bits is the cut label in the paper's notation: character i is '1'
	// iff the node with topological index i is in the cut.
	Bits   string
	Level  int
	Branch int // 1-branch or 0-branch from the parent
	Status TraceStatus
	Kids   []*TraceNode
}

// TraceResult is the annotated tree plus the Fig. 7 tallies.
type TraceResult struct {
	Root       *TraceNode
	Considered int64
	Passed     int64
	Failed     int64
	Skipped    int64
}

// TraceSearchTree builds the full binary search tree of §6.1 for a small
// graph (at most 16 operation nodes), annotating each 1-branch with the
// outcome of the output-port and convexity checks and marking the
// subtrees the algorithm eliminates. Forbidden nodes take only their
// 0-branch, as in the search itself.
func TraceSearchTree(g *dfg.Graph, cfg Config) (*TraceResult, error) {
	n := g.NumOps()
	if n > 16 {
		return nil, fmt.Errorf("core: trace tree limited to 16 nodes (graph has %d)", n)
	}
	res := &TraceResult{Root: &TraceNode{Bits: strings.Repeat("0", n), Level: 0, Status: TraceSame}}
	var build func(parent *TraceNode, rank int, cut dfg.Cut, eliminated bool)
	build = func(parent *TraceNode, rank int, cut dfg.Cut, eliminated bool) {
		if rank == n {
			return
		}
		id := g.OpOrder[rank]
		// 1-branch.
		if !g.Nodes[id].Forbidden {
			childCut := append(append(dfg.Cut{}, cut...), id)
			bits := []byte(parent.Bits)
			bits[rank] = '1'
			child := &TraceNode{Bits: string(bits), Level: rank + 1, Branch: 1}
			childEliminated := eliminated
			if eliminated {
				child.Status = TraceSkipped
				res.Skipped++
			} else {
				ok := g.Outputs(childCut) <= cfg.Nout && g.Convex(childCut)
				res.Considered++
				if ok {
					child.Status = TracePassed
					res.Passed++
				} else {
					child.Status = TraceFailed
					res.Failed++
					childEliminated = true
				}
			}
			parent.Kids = append(parent.Kids, child)
			build(child, rank+1, childCut, childEliminated)
		}
		// 0-branch: same cut as the parent.
		child := &TraceNode{Bits: parent.Bits, Level: rank + 1, Branch: 0, Status: TraceSame}
		parent.Kids = append(parent.Kids, child)
		build(child, rank+1, cut, eliminated)
	}
	build(res.Root, 0, nil, false)
	return res, nil
}

// Render draws the tree in an indented ASCII form resembling Fig. 7.
func (r *TraceResult) Render() string {
	var sb strings.Builder
	var walk func(n *TraceNode, prefix string)
	walk = func(n *TraceNode, prefix string) {
		marker := ""
		switch n.Status {
		case TracePassed:
			marker = " [pass]"
		case TraceFailed:
			marker = " [FAIL → subtree eliminated]"
		case TraceSkipped:
			marker = " [not considered]"
		}
		if n.Level == 0 {
			fmt.Fprintf(&sb, "%s (root)\n", n.Bits)
		} else {
			fmt.Fprintf(&sb, "%s%d-> %s%s\n", prefix, n.Branch, n.Bits, marker)
		}
		for _, k := range n.Kids {
			walk(k, prefix+"  ")
		}
	}
	walk(r.Root, "")
	fmt.Fprintf(&sb, "\nconsidered=%d passed=%d failed=%d not-considered=%d\n",
		r.Considered, r.Passed, r.Failed, r.Skipped)
	return sb.String()
}
