package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"isex/internal/core"
	"isex/internal/dfg"
	"isex/internal/ir"
	"isex/internal/latency"
	"isex/internal/minic"
	"isex/internal/passes"
	"isex/internal/report"
	"isex/internal/sim"
	"isex/internal/workload"
)

// ---------------------------------------------------------------------------
// Fig. 3 — the motivational adpcmdecode analysis.

// Fig3Row describes the best cut of the decoder's hottest block under one
// port constraint.
type Fig3Row struct {
	Nin, Nout  int
	Size       int
	In, Out    int
	Saved      int64
	Components int
	Ops        string
}

// Fig3 identifies the best single cut of adpcmdecode's hottest block for
// the constraints discussed around Fig. 3: (2,1) yields the M1-style
// approximate multiplication, (3,1) extends it with the
// accumulate/saturate chain (M2), and with more ports the identification
// adds disconnected companions (M2+M3).
func Fig3(budget int64) ([]Fig3Row, error) {
	k := workload.ByName("adpcmdecode")
	m, err := k.Prepare()
	if err != nil {
		return nil, err
	}
	_, _, g := hotBlock(m)
	if g == nil {
		return nil, fmt.Errorf("experiments: no identifiable block in adpcmdecode")
	}
	model := latency.Default()
	var rows []Fig3Row
	for _, c := range [][2]int{{2, 1}, {3, 1}, {4, 2}, {6, 3}} {
		res := core.FindBestCut(g, core.Config{Nin: c[0], Nout: c[1], Model: model, MaxCuts: budget})
		row := Fig3Row{Nin: c[0], Nout: c[1]}
		if res.Found {
			row.Size = res.Est.Size
			row.In = res.Est.In
			row.Out = res.Est.Out
			row.Saved = res.Est.Saved
			row.Components = res.Est.Components
			row.Ops = opMultiset(g, res.Cut)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func opMultiset(g *dfg.Graph, c dfg.Cut) string {
	count := map[string]int{}
	for _, id := range c {
		count[g.Nodes[id].Op.String()]++
	}
	var keys []string
	for k := range count {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var parts []string
	for _, k := range keys {
		if count[k] > 1 {
			parts = append(parts, fmt.Sprintf("%s×%d", k, count[k]))
		} else {
			parts = append(parts, k)
		}
	}
	return strings.Join(parts, " ")
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Fig3Table renders the rows.
func Fig3Table(rows []Fig3Row) string {
	t := &report.Table{
		Title:  "Fig. 3 — best single cut of the adpcmdecode hot block by port constraint",
		Header: []string{"Nin", "Nout", "size", "in", "out", "comps", "saved/exec", "operations"},
	}
	for _, r := range rows {
		t.AddRow(r.Nin, r.Nout, r.Size, r.In, r.Out, r.Components, r.Saved, r.Ops)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Fig. 7 — the search trace on the four-node example of Fig. 4.

// Fig7Result carries the trace statistics of the worked example.
type Fig7Result struct {
	Considered, Passed, Failed, Eliminated int64
}

// Fig4ExampleGraph reconstructs the four-node graph of Fig. 4 (see the
// node numbering in core's tests: + feeding * and >>, >> feeding the
// second +; two block outputs).
func Fig4ExampleGraph() (*dfg.Graph, error) {
	b := ir.NewBuilder("fig4", 5)
	p := b.Fn.Params
	t := b.Op(ir.OpAdd, p[0], p[1]) // paper node 3
	u := b.Op(ir.OpAShr, t, p[2])   // paper node 2
	v := b.Op(ir.OpMul, t, p[3])    // paper node 1
	w := b.Op(ir.OpAdd, u, p[4])    // paper node 0
	next := b.NewBlock("next")
	b.Jump(next)
	b.SetBlock(next)
	b.Ret(b.Op(ir.OpXor, v, w))
	f := b.Finish()
	return dfg.Build(f, f.Entry(), ir.Liveness(f))
}

// Fig7 runs the identification with Nout = 1 on the example and returns
// the trace statistics (paper: 11 considered, 5 passed, 6 failed, 4
// eliminated).
func Fig7() (Fig7Result, error) {
	g, err := Fig4ExampleGraph()
	if err != nil {
		return Fig7Result{}, err
	}
	res := core.FindBestCut(g, core.Config{Nin: 100, Nout: 1})
	return Fig7Result{
		Considered: res.Stats.CutsConsidered,
		Passed:     res.Stats.Passed,
		Failed:     res.Stats.Pruned,
		Eliminated: 15 - res.Stats.CutsConsidered,
	}, nil
}

// Fig7Table renders the result next to the paper's numbers.
func Fig7Table(r Fig7Result) string {
	t := &report.Table{
		Title:  "Fig. 7 — search trace on the Fig. 4 example (Nout=1)",
		Header: []string{"quantity", "paper", "this run"},
	}
	t.AddRow("cuts considered", 11, r.Considered)
	t.AddRow("passed both checks", 5, r.Passed)
	t.AddRow("failed a check", 6, r.Failed)
	t.AddRow("eliminated unvisited", 4, r.Eliminated)
	return t.String()
}

// ---------------------------------------------------------------------------
// Fig. 8 — cuts considered vs. graph size.

// Fig8Point is one basic block's measurement.
type Fig8Point struct {
	Kernel, Fn, Block string
	N                 int // operation nodes
	Cuts              int64
	Aborted           bool
}

// Fig8 measures, for every basic block of the whole suite, the number of
// cuts the identification considers with Nout = 2 and unconstrained Nin
// (exactly the setting of Fig. 8).
func Fig8(budget int64) ([]Fig8Point, error) {
	blocks, err := workload.RealBlockGraphs()
	if err != nil {
		return nil, err
	}
	var points []Fig8Point
	for _, bi := range blocks {
		cand := 0
		for _, id := range bi.Graph.OpOrder {
			if !bi.Graph.Nodes[id].Forbidden {
				cand++
			}
		}
		if cand < 2 {
			continue // nothing identifiable in this block
		}
		res := core.FindBestCut(bi.Graph, core.Config{Nin: 1 << 30, Nout: 2, MaxCuts: budget})
		points = append(points, Fig8Point{
			Kernel: bi.Kernel, Fn: bi.Fn, Block: bi.Block,
			N: bi.Graph.NumOps(), Cuts: res.Stats.CutsConsidered,
			Aborted: res.Stats.Aborted,
		})
	}
	return points, nil
}

// Fig8Series renders the points with N², N³ and N⁴ reference columns.
func Fig8Series(points []Fig8Point) string {
	s := &report.Series{
		Title:  "Fig. 8 — cuts considered vs. graph nodes (Nout=2, any Nin)",
		XLabel: "N",
		YLabel: "cuts",
	}
	for _, p := range points {
		label := fmt.Sprintf("%s/%s/%s", p.Kernel, p.Fn, p.Block)
		if p.Aborted {
			label += " (budget)"
		}
		s.Add(float64(p.N), float64(p.Cuts), label)
	}
	var sb strings.Builder
	sb.WriteString(s.String())
	sb.WriteString("\nreference: N^2, N^3, N^4 at matching N\n")
	seen := map[int]bool{}
	for _, p := range points {
		if seen[p.N] {
			continue
		}
		seen[p.N] = true
		n := float64(p.N)
		fmt.Fprintf(&sb, "N=%-4d N^2=%-12.0f N^3=%-14.0f N^4=%.0f\n", p.N, n*n, n*n*n, n*n*n*n)
	}
	return sb.String()
}

// Fig8WithinPolynomialBand reports how many points fall at or below the
// N^4 curve (the paper: all practical cases within polynomial bounds).
func Fig8WithinPolynomialBand(points []Fig8Point) (within, total int) {
	for _, p := range points {
		n := float64(p.N)
		if float64(p.Cuts) <= n*n*n*n {
			within++
		}
		total++
	}
	return within, total
}

// ---------------------------------------------------------------------------
// §8 in-text: run time by constraint; area of chosen datapaths.

// RuntimeRow is one identification wall-clock measurement.
type RuntimeRow struct {
	Benchmark string
	Nin, Nout int
	Duration  time.Duration
	Cuts      int64
	Aborted   bool
}

// Runtime measures SelectIterative wall-clock per benchmark × constraint
// (§8: "in all but extreme cases it took only some seconds; ... with
// loose constraints, run times were in the order of hours").
func Runtime(benchmarks []string, constraints [][2]int, ninstr int, budget int64) ([]RuntimeRow, error) {
	var rows []RuntimeRow
	for _, bname := range benchmarks {
		k := workload.ByName(bname)
		if k == nil {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", bname)
		}
		m, err := k.Prepare()
		if err != nil {
			return nil, err
		}
		for _, c := range constraints {
			cfg := core.Config{Nin: c[0], Nout: c[1], MaxCuts: budget}
			var sel core.SelectionResult
			d := Timed(func() { sel = core.SelectIterative(m, ninstr, cfg) })
			rows = append(rows, RuntimeRow{
				Benchmark: bname, Nin: c[0], Nout: c[1],
				Duration: d, Cuts: sel.Stats.CutsConsidered, Aborted: sel.Stats.Aborted,
			})
		}
	}
	return rows, nil
}

// RuntimeTable renders runtime rows.
func RuntimeTable(rows []RuntimeRow) string {
	t := &report.Table{
		Title:  "§8 — identification run time by constraint (Iterative, Ninstr=16)",
		Header: []string{"benchmark", "Nin", "Nout", "time", "cuts considered", "budget hit"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Nin, r.Nout, r.Duration.Round(time.Millisecond).String(), r.Cuts, r.Aborted)
	}
	return t.String()
}

// AreaRow summarizes the datapath investment for one benchmark.
type AreaRow struct {
	Benchmark string
	Nin, Nout int
	Ninstr    int
	TotalArea float64 // MAC-equivalents
	MaxArea   float64
}

// Area evaluates the silicon cost of the selected datapaths (§8: "the
// area investment ... was within the area of a couple of
// multiply-accumulators").
func Area(benchmarks []string, nin, nout, ninstr int, budget int64) ([]AreaRow, error) {
	model := latency.Default()
	var rows []AreaRow
	for _, bname := range benchmarks {
		k := workload.ByName(bname)
		if k == nil {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", bname)
		}
		m, err := k.Prepare()
		if err != nil {
			return nil, err
		}
		cfg := core.Config{Nin: nin, Nout: nout, Model: model, MaxCuts: budget}
		sel := core.SelectIterative(m, ninstr, cfg)
		row := AreaRow{Benchmark: bname, Nin: nin, Nout: nout, Ninstr: ninstr}
		for _, s := range sel.Instructions {
			row.TotalArea += s.Est.Area
			if s.Est.Area > row.MaxArea {
				row.MaxArea = s.Est.Area
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AreaTable renders area rows.
func AreaTable(rows []AreaRow) string {
	t := &report.Table{
		Title:  "§8 — area of selected datapaths (normalized: 32-bit MAC = 1.0)",
		Header: []string{"benchmark", "Nin", "Nout", "Ninstr", "total area", "largest AFU"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Nin, r.Nout, r.Ninstr, fmt.Sprintf("%.3f", r.TotalArea), fmt.Sprintf("%.3f", r.MaxArea))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Ablations (extensions beyond the paper, DESIGN.md §6).

// AblationRow contrasts search effort with optional prunings.
type AblationRow struct {
	Benchmark  string
	Nin, Nout  int
	Baseline   int64 // cuts considered, paper configuration
	InputPrune int64
	MeritPrune int64
	BothPrune  int64
}

// Ablation measures how the two optional prunings shrink the search on
// each benchmark's hottest block.
func Ablation(benchmarks []string, constraints [][2]int, budget int64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, bname := range benchmarks {
		k := workload.ByName(bname)
		if k == nil {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", bname)
		}
		m, err := k.Prepare()
		if err != nil {
			return nil, err
		}
		_, _, g := hotBlock(m)
		if g == nil {
			return nil, fmt.Errorf("experiments: no identifiable block in %q", bname)
		}
		for _, c := range constraints {
			mk := func(pi, pm bool) int64 {
				cfg := core.Config{Nin: c[0], Nout: c[1], MaxCuts: budget,
					PruneInputs: pi, PruneMerit: pm}
				return core.FindBestCut(g, cfg).Stats.CutsConsidered
			}
			rows = append(rows, AblationRow{
				Benchmark: bname, Nin: c[0], Nout: c[1],
				Baseline:   mk(false, false),
				InputPrune: mk(true, false),
				MeritPrune: mk(false, true),
				BothPrune:  mk(true, true),
			})
		}
	}
	return rows, nil
}

// AblationTable renders ablation rows.
func AblationTable(rows []AblationRow) string {
	t := &report.Table{
		Title:  "Ablation — cuts considered with optional prunings (hot block)",
		Header: []string{"benchmark", "Nin", "Nout", "paper", "+input", "+merit", "+both"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Nin, r.Nout, r.Baseline, r.InputPrune, r.MeritPrune, r.BothPrune)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Extension (§9 future work): selection under an area constraint.

// TradeoffRow is one point of the merit-vs-area-budget curve.
type TradeoffRow struct {
	Benchmark string
	Budget    float64 // MAC-equivalents
	Speedup   float64
	UsedArea  float64
	Chosen    int
}

// AreaTradeoff sweeps area budgets for one benchmark at (nin, nout),
// realizing the paper's §9 "instruction selection under area constraint"
// with the knapsack selector.
func AreaTradeoff(bench string, nin, nout, ninstr int, budgets []float64, cutBudget int64) ([]TradeoffRow, error) {
	k := workload.ByName(bench)
	if k == nil {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}
	model := latency.Default()
	base, err := BaselineCycles(k, model)
	if err != nil {
		return nil, err
	}
	m, err := k.Prepare()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Nin: nin, Nout: nout, Model: model, MaxCuts: cutBudget}
	var rows []TradeoffRow
	for _, b := range budgets {
		sel := core.SelectAreaConstrained(m, ninstr, b, 2*ninstr, cfg)
		var used float64
		for _, s := range sel.Instructions {
			used += s.Est.Area
		}
		rows = append(rows, TradeoffRow{
			Benchmark: bench, Budget: b,
			Speedup:  estSpeedup(base, sel.TotalMerit),
			UsedArea: used, Chosen: len(sel.Instructions),
		})
	}
	return rows, nil
}

// AreaTradeoffTable renders the curve.
func AreaTradeoffTable(rows []TradeoffRow) string {
	t := &report.Table{
		Title:  "Extension — speedup vs. area budget (§9 future work, knapsack selection)",
		Header: []string{"benchmark", "area budget", "speedup", "area used", "instructions"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark, fmt.Sprintf("%.2f", r.Budget), fmt.Sprintf("%.3f", r.Speedup),
			fmt.Sprintf("%.3f", r.UsedArea), r.Chosen)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Extension (§9): effect of issue width on ISE gain.

// VLIWRow is one (benchmark, width) measurement.
type VLIWRow struct {
	Benchmark string
	Width     int
	Base      int64
	Patched   int64
	Speedup   float64
}

// VLIWStudy selects ISEs at (nin, nout) and evaluates the same selection
// on statically scheduled machines of increasing issue width — the §9
// caveat that the paper's single-issue model overstates gains on VLIWs.
func VLIWStudy(bench string, nin, nout, ninstr int, widths []int, cutBudget int64) ([]VLIWRow, error) {
	k := workload.ByName(bench)
	if k == nil {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}
	model := latency.Default()
	base, err := k.Prepare()
	if err != nil {
		return nil, err
	}
	patched, err := k.Prepare()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Nin: nin, Nout: nout, Model: model, MaxCuts: cutBudget}
	sel := core.SelectIterative(patched, ninstr, cfg)
	if len(sel.Instructions) > 0 {
		if _, _, err := core.ApplySelection(patched, sel.Instructions, model); err != nil {
			return nil, err
		}
	}
	var rows []VLIWRow
	for _, w := range widths {
		cb, err := sim.VLIWCycles(base, model, w)
		if err != nil {
			return nil, err
		}
		cp, err := sim.VLIWCycles(patched, model, w)
		if err != nil {
			return nil, err
		}
		sp := 0.0
		if cp > 0 {
			sp = float64(cb) / float64(cp)
		}
		rows = append(rows, VLIWRow{Benchmark: bench, Width: w, Base: cb, Patched: cp, Speedup: sp})
	}
	return rows, nil
}

// VLIWTable renders the study.
func VLIWTable(rows []VLIWRow) string {
	t := &report.Table{
		Title:  "Extension — ISE speedup vs. issue width (§9: the single-issue model overstates VLIW gains)",
		Header: []string{"benchmark", "issue width", "base cycles", "patched cycles", "speedup"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Width, r.Base, r.Patched, fmt.Sprintf("%.3f", r.Speedup))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// §4 motivation: recurrence-based identification finds only small clusters.

// MotivationRow compares cluster sizes of the recurrence school against
// the exact search on one benchmark.
type MotivationRow struct {
	Benchmark         string
	Nin, Nout         int
	RecurrenceMax     int
	RecurrenceSpeedup float64
	ExactMax          int
	ExactSpeedup      float64
}

// Motivation quantifies §4's observation: "identification based on
// recurrence of clusters would hardly find candidates of more than 3–4
// operations".
func Motivation(benchmarks []string, nin, nout, ninstr int, cutBudget int64) ([]MotivationRow, error) {
	model := latency.Default()
	var rows []MotivationRow
	for _, bname := range benchmarks {
		k := workload.ByName(bname)
		if k == nil {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", bname)
		}
		base, err := BaselineCycles(k, model)
		if err != nil {
			return nil, err
		}
		m, err := k.Prepare()
		if err != nil {
			return nil, err
		}
		cfg := core.Config{Nin: nin, Nout: nout, Model: model, MaxCuts: cutBudget}
		rec := runSelection(context.Background(), MethodRecurrence, m, ninstr, cfg)
		exact := runSelection(context.Background(), MethodIterative, m, ninstr, cfg)
		row := MotivationRow{Benchmark: bname, Nin: nin, Nout: nout,
			RecurrenceSpeedup: estSpeedup(base, rec.TotalMerit),
			ExactSpeedup:      estSpeedup(base, exact.TotalMerit)}
		for _, s := range rec.Instructions {
			if s.Est.Size > row.RecurrenceMax {
				row.RecurrenceMax = s.Est.Size
			}
		}
		for _, s := range exact.Instructions {
			if s.Est.Size > row.ExactMax {
				row.ExactMax = s.Est.Size
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MotivationTable renders the study.
func MotivationTable(rows []MotivationRow) string {
	t := &report.Table{
		Title:  "§4 motivation — recurrence-based clustering vs. the exact search",
		Header: []string{"benchmark", "Nin", "Nout", "recurrence max ops", "recurrence speedup", "exact max ops", "exact speedup"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Nin, r.Nout, r.RecurrenceMax,
			fmt.Sprintf("%.3f", r.RecurrenceSpeedup), r.ExactMax, fmt.Sprintf("%.3f", r.ExactSpeedup))
	}
	return t.String()
}

// Fig5Tree renders the full annotated search tree of the Fig. 4 example
// (Fig. 5's structure with Fig. 7's pass/fail annotations).
func Fig5Tree() (string, error) {
	g, err := Fig4ExampleGraph()
	if err != nil {
		return "", err
	}
	res, err := core.TraceSearchTree(g, core.Config{Nin: 100, Nout: 1})
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}

// ---------------------------------------------------------------------------
// Preprocessing ablation: if-conversion's contribution.

// IfConvRow contrasts achievable speedup with and without if-conversion.
type IfConvRow struct {
	Benchmark          string
	Nin, Nout          int
	WithIfConv         float64
	WithoutIfConv      float64
	HotBlockOpsWith    int
	HotBlockOpsWithout int
}

// IfConvAblation quantifies why the paper if-converts before identifying
// (§8): without SEL-merged blocks, the conditional update chains split
// into small basic blocks and the identifiable cuts shrink drastically.
func IfConvAblation(benchmarks []string, nin, nout, ninstr int, cutBudget int64) ([]IfConvRow, error) {
	model := latency.Default()
	var rows []IfConvRow
	for _, bname := range benchmarks {
		k := workload.ByName(bname)
		if k == nil {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", bname)
		}
		base, err := BaselineCycles(k, model)
		if err != nil {
			return nil, err
		}
		row := IfConvRow{Benchmark: bname, Nin: nin, Nout: nout}
		for _, noIfConv := range []bool{false, true} {
			m, err := minic.Compile(k.Source, minic.Options{UnrollLimit: k.Unroll})
			if err != nil {
				return nil, err
			}
			if err := passes.Run(m, passes.Options{NoIfConvert: noIfConv}); err != nil {
				return nil, err
			}
			env, err := k.NewEnv(m)
			if err != nil {
				return nil, err
			}
			env.Profile = true
			if _, _, err := env.Call(k.Entry, k.Args...); err != nil {
				return nil, err
			}
			cfg := core.Config{Nin: nin, Nout: nout, Model: model, MaxCuts: cutBudget}
			sel := core.SelectIterative(m, ninstr, cfg)
			sp := estSpeedup(base, sel.TotalMerit)
			_, _, g := hotBlock(m)
			ops := 0
			if g != nil {
				ops = g.NumOps()
			}
			if noIfConv {
				row.WithoutIfConv = sp
				row.HotBlockOpsWithout = ops
			} else {
				row.WithIfConv = sp
				row.HotBlockOpsWith = ops
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// IfConvTable renders the ablation.
func IfConvTable(rows []IfConvRow) string {
	t := &report.Table{
		Title:  "Preprocessing ablation — speedup with and without if-conversion (§8's preprocessing)",
		Header: []string{"benchmark", "Nin", "Nout", "with if-conv", "hot block ops", "without", "hot block ops"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Nin, r.Nout,
			fmt.Sprintf("%.3f", r.WithIfConv), r.HotBlockOpsWith,
			fmt.Sprintf("%.3f", r.WithoutIfConv), r.HotBlockOpsWithout)
	}
	return t.String()
}
