package ir

import (
	"strings"
	"testing"
)

// sampleModule exercises every construct the text format supports.
func sampleModule(t *testing.T) *Module {
	t.Helper()
	m := &Module{
		Globals: []Global{
			{Name: "tab", Size: 4, Init: []int32{1, -2, 3}},
			{Name: "out", Size: 8},
		},
	}
	m.AddAFU(AFUDef{
		Name: "sat_add", NumIn: 2, NumSlots: 5, Latency: 1, Area: 0.53,
		Body: []AFUOp{
			{Op: OpAdd, A: 0, B: 1, Dst: 2},
			{Op: OpConst, Imm: 32767, Dst: 3},
			{Op: OpMin, A: 2, B: 3, Dst: 4},
		},
		OutSlots: []int{4},
	})
	b := NewBuilder("f", 2)
	x, y := b.Fn.Params[0], b.Fn.Params[1]
	sum := b.Op(OpAdd, x, y)
	g := b.Global("tab")
	v := b.Load(b.Op(OpAdd, g, sum))
	d := b.Fn.NewReg()
	b.Emit(Instr{Op: OpCustom, AFU: 0, Dsts: []Reg{d}, Args: []Reg{v, sum}})
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.Branch(d, loop, exit)
	b.SetBlock(loop)
	b.Store(g, d)
	al := b.Alloca(4)
	b.Store(al, b.Const(-9))
	b.Jump(exit)
	b.SetBlock(exit)
	b.Ret(d)
	fn := b.Finish()
	fn.Blocks[1].Freq = 42
	m.Funcs = append(m.Funcs, fn)

	vb := NewBuilder("voidfn", 1)
	r := vb.Fn.NewReg()
	vb.Call("f", []Reg{r}, vb.Fn.Params[0], vb.Fn.Params[0])
	vb.Call("voidhelper", nil)
	vb.RetVoid()
	m.Funcs = append(m.Funcs, vb.Finish())

	hb := NewBuilder("voidhelper", 0)
	hb.RetVoid()
	m.Funcs = append(m.Funcs, hb.Finish())

	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSerializeParseRoundTrip(t *testing.T) {
	m := sampleModule(t)
	text := Serialize(m)
	m2, err := ParseModule(text)
	if err != nil {
		t.Fatalf("parse: %v\ntext:\n%s", err, text)
	}
	text2 := Serialize(m2)
	if text != text2 {
		t.Fatalf("round trip diverged:\n--- first ---\n%s--- second ---\n%s", text, text2)
	}
	// Structure checks.
	if len(m2.Globals) != 2 || len(m2.AFUs) != 1 || len(m2.Funcs) != 3 {
		t.Fatalf("structure lost: %d globals, %d afus, %d funcs",
			len(m2.Globals), len(m2.AFUs), len(m2.Funcs))
	}
	if m2.Funcs[0].Blocks[1].Freq != 42 {
		t.Error("freq lost")
	}
	if got := m2.AFUs[0]; got.Name != "sat_add" || got.Latency != 1 || got.Area != 0.53 {
		t.Errorf("afu metadata lost: %+v", got)
	}
	// Semantics: the AFU executes identically.
	out1, err1 := m.AFUs[0].Exec([]int32{100, 200})
	out2, err2 := m2.AFUs[0].Exec([]int32{100, 200})
	if err1 != nil || err2 != nil || out1[0] != out2[0] {
		t.Errorf("afu semantics lost: %v/%v %v/%v", out1, err1, out2, err2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"junk", "hello world"},
		{"bad global", "global tab[4]"},
		{"bad global size", "global @t[zero]"},
		{"unterminated func", "func f() regs=1 {\n  e:\n    ret"},
		{"no terminator", "func f() regs=1 {\n  e:\n}"},
		{"unknown op", "func f() regs=2 {\n  e:\n    r1 = frobnicate r0\n    ret\n}"},
		{"bad arity", "func f() regs=3 {\n  e:\n    r2 = add r0\n    ret\n}"},
		{"jump to nowhere", "func f() regs=1 {\n  e:\n    jump nirvana\n}"},
		{"branch malformed", "func f() regs=1 {\n  e:\n    branch r0 ? only\n}"},
		{"instr outside block", "func f() regs=2 {\n    r1 = const 0\n  e:\n    ret\n}"},
		{"double terminator", "func f() regs=1 {\n  e:\n    ret\n    ret\n}"},
		{"dup block", "func f() regs=1 {\n  e:\n    ret\n  e:\n    ret\n}"},
		{"bad reg", "func f() regs=2 {\n  e:\n    rX = const 0\n    ret\n}"},
		{"unterminated afu", "afu #0 \"a\" in=1 slots=1 latency=1 area=0 {\n    out s0"},
		{"bad afu op", "afu #0 \"a\" in=1 slots=2 latency=1 area=0 {\n    s1 = load s0\n    out s1\n}"},
		// Verifier catches semantic problems post-parse.
		{"reg out of range", "func f() regs=1 {\n  e:\n    r5 = const 0\n    ret\n}"},
		{"call to missing fn", "func f() regs=1 {\n  e:\n    r0 = call @ghost\n    ret\n}"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseModule(c.src); err == nil {
				t.Errorf("ParseModule accepted %q", c.src)
			}
		})
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
global @g[2] = {5, 6}

# another
func main() regs=2 {
  entry:
    r0 = global @g
    r1 = load r0

    ret r1
}
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 1 || len(m.Funcs[0].Blocks) != 1 {
		t.Fatalf("parse structure wrong")
	}
}

func TestSerializeHumanStable(t *testing.T) {
	m := sampleModule(t)
	text := Serialize(m)
	for _, want := range []string{
		"global @tab[4] = {1, -2, 3}",
		"global @out[8]",
		`afu #0 "sat_add" in=2 slots=5 latency=1 area=0.53 {`,
		"s2 = add s0, s1",
		"s3 = const 32767",
		"out s4",
		"func f(r0, r1) regs=",
		"loop: freq=42",
		"branch r",
		"ret",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("serialization missing %q:\n%s", want, text)
		}
	}
}
