package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"isex/internal/dfg"
	"isex/internal/greedy"
	"isex/internal/obs"
)

// This file makes identification an *anytime* engine: every search accepts
// a context.Context whose deadline/cancellation is polled periodically,
// every per-block worker is panic-safe, and every block search descends a
// guaranteed-sound degradation ladder:
//
//	rung 0  exact §6 branch-and-bound (anytime: budget/deadline/cancel)
//	rung 1  §9 windowed rescue under a detached grace context
//	rung 2  ISEGEN-style iterative racer adoption (Config.ISEGen): the
//	        Kernighan–Lin toggle engine that raced the exact search is
//	        halted and its best Legal/Evaluate-revalidated incumbent
//	        adopted — only when the exact search did not terminate
//	rung 3  greedy last resort: clubbing + MaxMISO candidates revalidated
//	        with Legal/Evaluate (linear time, always terminates)
//
// Each rung is individually panic-guarded, so a fault in one rung drops
// the search to the next instead of unwinding the block; the engine
// returns the best sound answer it has, annotated with how it was
// obtained (SearchStatus + Rung), and never crashes or comes back
// empty-handed when the block has any legal positive-merit cut.

// SearchStatus classifies how a search ended, so callers know exactly how
// trustworthy a result is.
type SearchStatus uint8

const (
	// Exhaustive: the search ran to completion; the result is exact
	// (optimal under the configured algorithm).
	Exhaustive SearchStatus = iota
	// BudgetStopped: the MaxCuts valve tripped; the result is the best
	// found so far — a sound lower bound.
	BudgetStopped
	// DeadlineExceeded: the context deadline expired mid-search; the
	// result is the best found so far.
	DeadlineExceeded
	// Canceled: the context was canceled; the result is the best found so
	// far (no windowed rescue is attempted — the caller asked to stop;
	// only the O(E) greedy rung may still fill in an empty result).
	Canceled
	// Stalled: the engine watchdog found a worker making no poll
	// progress and re-split its subproblem; the result is sound but the
	// stalled subtree may not have been searched exhaustively.
	Stalled
	// Recovered: a worker panicked (or the block's graph could not be
	// built); the block contributes whatever the lower rungs salvaged,
	// other blocks are unaffected.
	Recovered
)

func (s SearchStatus) String() string {
	switch s {
	case Exhaustive:
		return "exhaustive"
	case BudgetStopped:
		return "budget-stopped"
	case DeadlineExceeded:
		return "deadline-exceeded"
	case Canceled:
		return "canceled"
	case Stalled:
		return "stalled"
	case Recovered:
		return "recovered"
	}
	return fmt.Sprintf("SearchStatus(%d)", uint8(s))
}

// worse returns the more severe of two statuses (severity increases with
// the constant order above).
func worse(a, b SearchStatus) SearchStatus {
	if b > a {
		return b
	}
	return a
}

// statusOfCtx maps a non-nil context error to its status.
func statusOfCtx(err error) SearchStatus {
	if errors.Is(err, context.DeadlineExceeded) {
		return DeadlineExceeded
	}
	return Canceled
}

// Rung identifies which rung of the degradation ladder produced the
// cut a block search returned.
type Rung uint8

const (
	// RungExact: the returned cut (or the absence of one) came from the
	// exact §6 branch-and-bound search.
	RungExact Rung = iota
	// RungWindowed: the §9 windowed rescue's cut replaced (or supplied)
	// the exact search's answer.
	RungWindowed
	// RungIterative: the ISEGEN-style Kernighan–Lin racer's best
	// revalidated incumbent supplied the answer (Config.ISEGen; only ever
	// when the exact search did not terminate).
	RungIterative
	// RungGreedy: the greedy last resort (clubbing/MaxMISO candidates
	// revalidated with Legal/Evaluate) supplied the answer.
	RungGreedy
)

func (r Rung) String() string {
	switch r {
	case RungExact:
		return "exact"
	case RungWindowed:
		return "windowed"
	case RungIterative:
		return "iterative"
	case RungGreedy:
		return "greedy"
	}
	return fmt.Sprintf("Rung(%d)", uint8(r))
}

// BlockStatus reports how the search of one basic block ended.
type BlockStatus struct {
	Fn, Block string
	Status    SearchStatus
	// Fallback reports that the §9 windowed heuristic re-ran the block
	// after the exact search tripped its budget or deadline; the block's
	// contribution is the better of the two sound answers.
	Fallback bool
	// Rung reports which ladder rung produced the block's returned cut
	// (the degradation reason when below RungExact).
	Rung Rung
	// RacerMerit is the best merit the iterative racer proved achievable
	// for the block (Config.ISEGen), whether or not its answer was
	// adopted; ≤ 0 when no racer ran or it published nothing (the block
	// searchers initialize it to -1, other constructors leave 0 — racer
	// merits are always positive).
	RacerMerit int64
	// Gap is (optimum − RacerMerit) / optimum, measured only on blocks
	// where the exact search terminated with a proven optimum while a
	// racer published an incumbent; GapKnown reports that both sides are
	// available. This is the quality metric of the racer heuristic.
	Gap      float64
	GapKnown bool
	// Err carries the first recovered panic (message plus truncated
	// stack) or graph-construction failure observed for the block.
	Err error
}

// mergeBlockStatus folds a later search of the same block (after a
// collapse) into its running status.
func mergeBlockStatus(dst *BlockStatus, s BlockStatus) {
	dst.Status = worse(dst.Status, s.Status)
	dst.Fallback = dst.Fallback || s.Fallback
	if s.Rung > dst.Rung {
		dst.Rung = s.Rung
	}
	if s.RacerMerit > dst.RacerMerit {
		dst.RacerMerit = s.RacerMerit
	}
	if s.GapKnown && !dst.GapKnown {
		dst.GapKnown, dst.Gap = true, s.Gap
	}
	if dst.Err == nil {
		dst.Err = s.Err
	}
}

// panicStackMax bounds the debug.Stack excerpt attached to recovered
// panics, keeping BlockStatus.Err (and its JSON rendering) readable.
const panicStackMax = 2048

// panicErr wraps a recovered panic value with the failing block's tag
// and a truncated stack excerpt.
func panicErr(tag string, r any) error {
	stack := debug.Stack()
	if len(stack) > panicStackMax {
		stack = append(stack[:panicStackMax:panicStackMax], "... [truncated]"...)
	}
	return fmt.Errorf("core: panic searching %s: %v\n%s", tag, r, stack)
}

// panicMsg renders a recovered panic value as a short one-line message
// for trace events.
func panicMsg(r any) string {
	s := fmt.Sprintf("%v", r)
	if i := len(s); i > 160 {
		s = s[:160] + "..."
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			s = s[:i]
			break
		}
	}
	return s
}

// guardRung runs one ladder rung, converting a panic inside it into a
// Recovered status with a stack-annotated error instead of unwinding
// the block search — the next rung still runs.
func guardRung(p *obs.Probe, tag string, bs *BlockStatus, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			bs.Status = worse(bs.Status, Recovered)
			if bs.Err == nil {
				bs.Err = panicErr(tag, r)
			}
			p.Panic(tag, panicMsg(r), 0)
		}
	}()
	fn()
}

// guardDriver is deferred by the public selection entry points: a panic
// escaping the per-block and per-task guards (for example one raised at a
// driver-side probe site, where no block worker is on the stack) is
// converted into a Recovered selection instead of crashing the caller.
// Whatever the driver had assembled into res before the panic survives; a
// synthetic "(driver)" block records the failure, and the result is
// re-finalized so Status/Degraded/FirstPanic stay truthful.
func guardDriver(p *obs.Probe, res *SelectionResult) {
	if r := recover(); r != nil {
		p.Panic("select-driver", panicMsg(r), 0)
		res.Blocks = append(res.Blocks, BlockStatus{
			Fn:     "(driver)",
			Status: Recovered,
			Err:    panicErr("select-driver", r),
		})
		res.finalize()
	}
}

// legalCut revalidates a cut defensively: a panic inside Legal (e.g. a
// cut corrupted by the very fault being recovered) counts as illegal.
func legalCut(g *dfg.Graph, c dfg.Cut, nin, nout int) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return len(c) > 0 && g.Legal(c, nin, nout)
}

// rescueWorthwhile reports whether the §9 windowed rescue should re-run
// a block that ended with status s. Canceled is excluded: the caller
// asked all work to stop, and the windowed pass is a real (if bounded)
// search. Recovered and Stalled are included — the exact answer may be
// missing or partial through no fault of the block.
func rescueWorthwhile(s SearchStatus) bool {
	switch s {
	case BudgetStopped, DeadlineExceeded, Stalled, Recovered:
		return true
	}
	return false
}

// greedyRescue is the bottom rung: screen the linear-time clubbing and
// MaxMISO decompositions for the best cut that is Legal under the
// configured ports and has positive merit. O(E) overall, no search, no
// context — it always terminates, even under a canceled context, which
// is what makes the ladder's guarantee unconditional. Deterministic:
// candidate order is fixed and ties keep the first candidate.
func greedyRescue(g *dfg.Graph, cfg Config) (best dfg.Cut, bestEst Estimate, cands int, found bool) {
	model := cfg.model()
	list := greedy.Clubbing(g, cfg.Nin, cfg.Nout)
	list = append(list, greedy.MaxMISODecompose(g)...)
	for _, c := range list {
		if !legalCut(g, c, cfg.Nin, cfg.Nout) {
			continue
		}
		est := Evaluate(g, c, model)
		if est.Merit <= 0 {
			continue
		}
		if !found || est.Merit > bestEst.Merit {
			found, best, bestEst = true, c, est
		}
	}
	return best, bestEst, len(list), found
}

// ctxCheckInterval is the number of 1-branches between context polls in
// the search loops: rare enough to cost nothing, frequent enough that an
// expired deadline is noticed within microseconds. Must be a power of two.
const ctxCheckInterval = 1024

// fallbackWindow sizes the §9 windowed rescue pass that re-runs a block
// whose exact search tripped its budget or deadline: each window's search
// is bounded by 2^fallbackWindow cuts, so the rescue is always cheap.
const fallbackWindow = 12

// Bounds of the grace period granted to a windowed rescue whose original
// deadline has already expired. The grace must be long enough for the
// cheap windowed pass to finish on any realistic block, yet small against
// the budgets callers set (the clamp keeps a multi-minute budget from
// earning a multi-minute overrun).
const (
	minRescueGrace = 50 * time.Millisecond
	maxRescueGrace = time.Second
)

// rescueCtx returns the context the §9 windowed rescue should run under.
// A live ctx (budget trip) is used as-is. An expired ctx would kill the
// rescue at its first poll — the bug this function exists to fix — so the
// rescue is detached from the expired deadline (keeping ctx's values) and
// given a short grace timeout derived from the original budget: one
// eighth of the wall-clock budget this block search was granted, clamped
// to [minRescueGrace, maxRescueGrace]. Explicit cancellation is never
// overridden: callers that canceled asked all work to stop.
func rescueCtx(ctx context.Context, start time.Time) (context.Context, context.CancelFunc) {
	if err := ctx.Err(); err == nil || !errors.Is(err, context.DeadlineExceeded) {
		return ctx, func() {}
	}
	grace := minRescueGrace
	if dl, ok := ctx.Deadline(); ok {
		if b := dl.Sub(start) / 8; b > grace {
			grace = b
		}
	}
	if grace > maxRescueGrace {
		grace = maxRescueGrace
	}
	return context.WithTimeout(context.WithoutCancel(ctx), grace)
}

// searchBlockSafe runs single-cut identification on one block down the
// degradation ladder: the exact anytime search, then (when it tripped or
// failed) the §9 windowed rescue under a grace context, then the greedy
// last resort. Every rung is panic-guarded individually, so any fault —
// including one injected inside a probe site — degrades the answer
// instead of losing it; the final backstop keeps a result only if its
// cut revalidates as Legal.
func searchBlockSafe(ctx context.Context, g *dfg.Graph, cfg Config) (res Result, bs BlockStatus) {
	// Admission gate (Config.Pool): one slot per in-flight block search,
	// acquired for exactly the duration of this search — the holder never
	// blocks on the pool again (cfg.Pool is cleared), so gating cannot
	// deadlock. A closed pool (0 slots granted) degrades to ungated.
	if cfg.Pool != nil {
		pool := cfg.Pool
		cfg.Pool = nil
		if n := pool.Acquire(1); n > 0 {
			defer pool.Release(n)
		}
	}
	start := time.Now()
	bs = BlockStatus{Fn: g.Fn.Name, Block: g.Block.Name, RacerMerit: -1}
	tag := bs.Fn + "/" + bs.Block
	// Every block search owns one causal span: the racer, the rescue
	// rungs, the engine's worker rings and the sub-searches all inherit
	// the sub-probe, so their events group under this search in the
	// analyzer's span tree. One atomic add per block search.
	cfg.Probe = cfg.Probe.Sub()
	// The iterative racer (Config.ISEGen) starts together with the exact
	// search and races rungs 0–1 on its own goroutine; nil when the block
	// does not qualify. The deferred halt is the backstop for panics that
	// skip the adoption rung (halt is idempotent).
	rh := raceISEGen(ctx, g, cfg, tag)
	if rh != nil {
		defer rh.halt()
	}
	defer func() {
		// Backstop for panics escaping the rung guards themselves
		// (including a fault injected at the SearchEnd site below): keep
		// the answer when it revalidates, never report an illegal cut.
		if r := recover(); r != nil {
			bs.Status = worse(bs.Status, Recovered)
			if bs.Err == nil {
				bs.Err = panicErr(tag, r)
			}
			if res.Found && !legalCut(g, res.Cut, cfg.Nin, cfg.Nout) {
				res = Result{}
			}
		}
		res.Status = bs.Status
	}()

	// Rung 0: exact B&B (serial, engine or windowed per cfg).
	guardRung(cfg.Probe, tag, &bs, func() {
		if h := cfg.Probe.HookOf(); h != nil {
			h(bs.Fn, bs.Block)
		}
		cfg.Probe.SearchBegin(tag, g.NumOps(), cfg.Workers)
		runCfg := cfg
		runCfg.race = rh // only rung 0 sees the racer's shared bound
		res = FindBestCutCtx(ctx, g, runCfg)
		bs.Status = res.Status
		if bs.Err == nil {
			bs.Err = res.Err
		}
	})

	// Rung 1: §9 windowed rescue. Fallback and the rescue's stats are
	// reported only when the rescue actually examined something — a
	// rescue killed at its first context poll contributed nothing.
	if rescueWorthwhile(bs.Status) && cfg.Window == 0 && g.NumOps() > fallbackWindow {
		guardRung(cfg.Probe, tag, &bs, func() {
			rctx, cancel := rescueCtx(ctx, start)
			defer cancel()
			w := FindBestCutWindowedCtx(rctx, g, cfg, fallbackWindow)
			if w.Stats.CutsConsidered > 0 || w.Found {
				bs.Fallback = true
				bs.Status = worse(bs.Status, w.Status)
				res.Stats.add(w.Stats)
				if w.Found && (!res.Found || w.Est.Merit > res.Est.Merit) {
					res.Found, res.Cut, res.Est = true, w.Cut, w.Est
					bs.Rung = RungWindowed
				}
			}
			// Adoption precedes the probe so an injected fault at the
			// rescue site cannot discard a rescue already computed.
			cfg.Probe.Rescue(tag, w.Found, w.Est.Merit, w.Stats.CutsConsidered)
			if rh != nil && w.Found {
				rh.donate(w.Cut) // the rescue cut is a fresh racer seed
			}
		})
	}

	// Rung 2: iterative racer adoption (Config.ISEGen). The racer is
	// halted and its outcome recorded in every case; its answer replaces
	// the exact rungs' only when the exact search did not terminate —
	// exact completion always overrides with the proven optimum, which
	// keeps terminating blocks bit-identical to a racer-less run.
	if rh != nil {
		guardRung(cfg.Probe, tag, &bs, func() {
			cut, est, ok := rh.settle(g, cfg, &bs, res.Est.Merit, res.Found)
			if err := rh.failure(); err != nil && res.Err == nil {
				res.Err = err
			}
			if ok && (!res.Found || est.Merit > res.Est.Merit) {
				prev := int64(-1)
				if res.Found {
					prev = res.Est.Merit
				}
				res.Found, res.Cut, res.Est = true, cut, est
				bs.Rung = RungIterative
				// Adoption precedes the probe so an injected fault at the
				// racer site cannot discard an answer already adopted.
				cfg.Probe.RacerAdopt(tag, est.Merit, prev)
			}
		})
	}

	// Rung 3: greedy last resort, only when the block is otherwise
	// empty-handed for an abnormal reason (an Exhaustive not-found is
	// proof that no positive-merit cut exists). Runs even under a
	// canceled context: it is O(E) straight-line work, not a search.
	if !res.Found && bs.Status != Exhaustive {
		guardRung(cfg.Probe, tag, &bs, func() {
			cut, est, cands, found := greedyRescue(g, cfg)
			if found {
				res.Found, res.Cut, res.Est = true, cut, est
				bs.Rung = RungGreedy
			}
			// Adoption precedes the probe so an injected fault at the
			// greedy site cannot discard a rescue already computed.
			cfg.Probe.Greedy(tag, found, est.Merit, int64(cands))
		})
	}

	guardRung(cfg.Probe, tag, &bs, func() {
		endMerit := int64(-1)
		if res.Found {
			endMerit = res.Est.Merit
		}
		cfg.Probe.SearchEnd(tag, int64(bs.Status), endMerit, res.Stats.CutsConsidered)
	})
	return res, bs
}

// SearchBlockCtx runs single-cut identification on one block graph down
// the full degradation ladder — exact search, §9 windowed rescue, the
// iterative racer (Config.ISEGen), greedy last resort — and reports both
// the result and the per-block status. It is the single-block entry point
// the benches and external drivers use; the selection pipeline's per-block
// searches go through the identical path, so anything measured here is
// what selection pays.
func SearchBlockCtx(ctx context.Context, g *dfg.Graph, cfg Config) (Result, BlockStatus) {
	return searchBlockSafe(ctx, g, cfg)
}

// searchBlockMultiSafe is searchBlockSafe for the multiple-cut search of
// §6.2. The windowed rescue and the greedy rung contribute a single cut
// (a valid 1-of-m assignment) when they beat the exact search's best
// assignment.
func searchBlockMultiSafe(ctx context.Context, g *dfg.Graph, m int, cfg Config) (res MultiResult, bs BlockStatus) {
	// Admission gate, exactly as in searchBlockSafe.
	if cfg.Pool != nil {
		pool := cfg.Pool
		cfg.Pool = nil
		if n := pool.Acquire(1); n > 0 {
			defer pool.Release(n)
		}
	}
	start := time.Now()
	bs = BlockStatus{Fn: g.Fn.Name, Block: g.Block.Name, RacerMerit: -1}
	tag := bs.Fn + "/" + bs.Block
	// One causal span per block search, exactly as in searchBlockSafe.
	cfg.Probe = cfg.Probe.Sub()
	// As in searchBlockSafe: the iterative racer races the exact search
	// and its single best cut can stand in as a 1-of-m assignment when
	// the exact search degrades.
	rh := raceISEGen(ctx, g, cfg, tag)
	if rh != nil {
		defer rh.halt()
	}
	defer func() {
		if r := recover(); r != nil {
			bs.Status = worse(bs.Status, Recovered)
			if bs.Err == nil {
				bs.Err = panicErr(tag, r)
			}
			if res.Found && !cutsLegal(g, res.Cuts, cfg.Nin, cfg.Nout) {
				res = MultiResult{}
			}
		}
		res.Status = bs.Status
	}()

	guardRung(cfg.Probe, tag, &bs, func() {
		if h := cfg.Probe.HookOf(); h != nil {
			h(bs.Fn, bs.Block)
		}
		cfg.Probe.SearchBegin(tag, g.NumOps(), cfg.Workers)
		runCfg := cfg
		runCfg.race = rh
		res = FindBestCutsCtx(ctx, g, m, runCfg)
		bs.Status = res.Status
		if bs.Err == nil {
			bs.Err = res.Err
		}
	})

	if rescueWorthwhile(bs.Status) && cfg.Window == 0 && g.NumOps() > fallbackWindow {
		guardRung(cfg.Probe, tag, &bs, func() {
			rctx, cancel := rescueCtx(ctx, start)
			defer cancel()
			w := FindBestCutWindowedCtx(rctx, g, cfg, fallbackWindow)
			if w.Stats.CutsConsidered > 0 || w.Found {
				bs.Fallback = true
				bs.Status = worse(bs.Status, w.Status)
				res.Stats.add(w.Stats)
				if w.Found && (!res.Found || w.Est.Merit > res.TotalMerit) {
					res.Found = true
					res.Cuts = []dfg.Cut{w.Cut}
					res.Ests = []Estimate{w.Est}
					res.TotalMerit = w.Est.Merit
					bs.Rung = RungWindowed
				}
			}
			// Adoption precedes the probe so an injected fault at the
			// rescue site cannot discard a rescue already computed.
			cfg.Probe.Rescue(tag, w.Found, w.Est.Merit, w.Stats.CutsConsidered)
			if rh != nil && w.Found {
				rh.donate(w.Cut) // the rescue cut is a fresh racer seed
			}
		})
	}

	// Iterative racer adoption, exactly as in searchBlockSafe: the
	// racer's single cut stands in as a 1-of-m assignment when it beats
	// the degraded exact answer; exact completion always overrides.
	if rh != nil {
		guardRung(cfg.Probe, tag, &bs, func() {
			cut, est, ok := rh.settle(g, cfg, &bs, res.TotalMerit, res.Found)
			if err := rh.failure(); err != nil && res.Err == nil {
				res.Err = err
			}
			if ok && (!res.Found || est.Merit > res.TotalMerit) {
				prev := int64(-1)
				if res.Found {
					prev = res.TotalMerit
				}
				res.Found = true
				res.Cuts = []dfg.Cut{cut}
				res.Ests = []Estimate{est}
				res.TotalMerit = est.Merit
				bs.Rung = RungIterative
				// Adoption precedes the probe so an injected fault at the
				// racer site cannot discard an answer already adopted.
				cfg.Probe.RacerAdopt(tag, est.Merit, prev)
			}
		})
	}

	if !res.Found && bs.Status != Exhaustive {
		guardRung(cfg.Probe, tag, &bs, func() {
			cut, est, cands, found := greedyRescue(g, cfg)
			if found {
				res.Found = true
				res.Cuts = []dfg.Cut{cut}
				res.Ests = []Estimate{est}
				res.TotalMerit = est.Merit
				bs.Rung = RungGreedy
			}
			// Adoption precedes the probe so an injected fault at the
			// greedy site cannot discard a rescue already computed.
			cfg.Probe.Greedy(tag, found, est.Merit, int64(cands))
		})
	}

	guardRung(cfg.Probe, tag, &bs, func() {
		endMerit := int64(-1)
		if res.Found {
			endMerit = res.TotalMerit
		}
		cfg.Probe.SearchEnd(tag, int64(bs.Status), endMerit, res.Stats.CutsConsidered)
	})
	return res, bs
}

// cutsLegal revalidates a multi-cut answer: every cut must be Legal.
func cutsLegal(g *dfg.Graph, cuts []dfg.Cut, nin, nout int) bool {
	if len(cuts) == 0 {
		return false
	}
	for _, c := range cuts {
		if len(c) == 0 {
			continue
		}
		if !legalCut(g, c, nin, nout) {
			return false
		}
	}
	return true
}
