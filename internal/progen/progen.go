// Package progen generates random — but always valid and terminating —
// MiniC programs. It powers the repository's differential tests: a
// generated program must compute identical results (return values and
// global memory) when interpreted straight from the front end, after the
// full optimization pipeline, and after ISE identification and patching.
//
// Generated programs are C-like kernels over power-of-two-sized global
// arrays (indices are masked, so no access can go out of bounds), with
// counted loops only (trip counts are literals, so every program
// terminates) and an acyclic call graph (helpers may only call
// previously generated helpers).
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	Seed int64
	// Helpers is the number of helper functions (each may call earlier
	// ones). Default 3.
	Helpers int
	// Arrays is the number of global arrays. Default 3.
	Arrays int
	// MaxStmts bounds statements per block. Default 6.
	MaxStmts int
	// MaxDepth bounds expression depth. Default 4.
	MaxDepth int
	// MaxTrip bounds loop trip counts. Default 6.
	MaxTrip int
	// AllowDiv permits guarded division/modulo. Default true-ish via
	// NoDiv.
	NoDiv bool
}

func (c *Config) fill() {
	if c.Helpers == 0 {
		c.Helpers = 3
	}
	if c.Arrays == 0 {
		c.Arrays = 3
	}
	if c.MaxStmts == 0 {
		c.MaxStmts = 6
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.MaxTrip == 0 {
		c.MaxTrip = 6
	}
}

// Program is a generated program plus the metadata tests need.
type Program struct {
	Source string
	// Globals lists the global arrays (all power-of-two sizes).
	Globals []string
	// Entry is always "main" with no parameters, returning a checksum.
	Entry string
}

type gen struct {
	rng      *rand.Rand
	cfg      Config
	sb       strings.Builder
	arrays   []string
	arrSize  map[string]int
	funcs    []string // previously generated helpers (callable)
	fnArity  map[string]int
	scope    []string // visible scalar variables
	loopVars map[string]bool
	depth    int
	nameSeq  int
}

// Generate produces a random program for the configuration.
func Generate(cfg Config) Program {
	cfg.fill()
	g := &gen{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cfg:      cfg,
		arrSize:  map[string]int{},
		fnArity:  map[string]int{},
		loopVars: map[string]bool{},
	}
	// Global arrays with power-of-two sizes and random initializers.
	for i := 0; i < cfg.Arrays; i++ {
		name := fmt.Sprintf("g%d", i)
		size := 1 << (3 + g.rng.Intn(3)) // 8, 16, 32
		g.arrays = append(g.arrays, name)
		g.arrSize[name] = size
		fmt.Fprintf(&g.sb, "int %s[%d] = {", name, size)
		for j := 0; j < size; j++ {
			if j > 0 {
				g.sb.WriteString(", ")
			}
			fmt.Fprintf(&g.sb, "%d", g.rng.Intn(2001)-1000)
		}
		g.sb.WriteString("};\n")
	}
	g.sb.WriteString("\n")
	// Helper functions.
	for i := 0; i < cfg.Helpers; i++ {
		g.helper(i)
	}
	// main: call every helper, fold results into a checksum.
	g.sb.WriteString("int main() {\n    int sum = 0;\n")
	for i, fn := range g.funcs {
		var args []string
		for a := 0; a < g.fnArity[fn]; a++ {
			args = append(args, fmt.Sprintf("%d", g.rng.Intn(201)-100))
		}
		fmt.Fprintf(&g.sb, "    sum = sum ^ (%s(%s) + %d);\n", fn, strings.Join(args, ", "), i)
	}
	// Fold some array state into the checksum too.
	for _, a := range g.arrays {
		fmt.Fprintf(&g.sb, "    sum = sum + %s[%d] - %s[%d];\n",
			a, g.rng.Intn(g.arrSize[a]), a, g.rng.Intn(g.arrSize[a]))
	}
	g.sb.WriteString("    return sum;\n}\n")
	return Program{Source: g.sb.String(), Globals: g.arrays, Entry: "main"}
}

func (g *gen) fresh(prefix string) string {
	g.nameSeq++
	return fmt.Sprintf("%s%d", prefix, g.nameSeq)
}

func (g *gen) helper(i int) {
	name := fmt.Sprintf("f%d", i)
	arity := 1 + g.rng.Intn(3)
	g.scope = g.scope[:0]
	var params []string
	for a := 0; a < arity; a++ {
		p := fmt.Sprintf("p%d", a)
		params = append(params, "int "+p)
		g.scope = append(g.scope, p)
	}
	fmt.Fprintf(&g.sb, "int %s(%s) {\n", name, strings.Join(params, ", "))
	g.block(1, g.cfg.MaxStmts)
	fmt.Fprintf(&g.sb, "    return %s;\n}\n\n", g.expr(g.cfg.MaxDepth))
	g.funcs = append(g.funcs, name)
	g.fnArity[name] = arity
}

func (g *gen) indent(level int) string { return strings.Repeat("    ", level) }

// block emits up to n statements at the given indent level.
func (g *gen) block(level, n int) {
	scopeMark := len(g.scope)
	stmts := 1 + g.rng.Intn(n)
	for s := 0; s < stmts; s++ {
		g.stmt(level)
	}
	g.scope = g.scope[:scopeMark]
}

func (g *gen) stmt(level int) {
	ind := g.indent(level)
	switch g.rng.Intn(10) {
	case 0, 1: // declaration
		v := g.fresh("v")
		fmt.Fprintf(&g.sb, "%sint %s = %s;\n", ind, v, g.expr(g.cfg.MaxDepth))
		g.scope = append(g.scope, v)
	case 2, 3: // scalar assignment (never to a loop variable)
		if v := g.pickAssignable(); v != "" {
			op := []string{"=", "+=", "-=", "^=", "&=", "|="}[g.rng.Intn(6)]
			fmt.Fprintf(&g.sb, "%s%s %s %s;\n", ind, v, op, g.expr(g.cfg.MaxDepth))
			return
		}
		g.stmt(level) // nothing assignable yet; try another statement
	case 4, 5: // array store with masked index
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		fmt.Fprintf(&g.sb, "%s%s[(%s) & %d] = %s;\n",
			ind, a, g.expr(2), g.arrSize[a]-1, g.expr(g.cfg.MaxDepth))
	case 6, 7: // if / if-else
		fmt.Fprintf(&g.sb, "%sif (%s) {\n", ind, g.expr(2))
		g.block(level+1, g.cfg.MaxStmts/2+1)
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "%s} else {\n", ind)
			g.block(level+1, g.cfg.MaxStmts/2+1)
		}
		fmt.Fprintf(&g.sb, "%s}\n", ind)
	case 8: // counted loop (bounded literal trip count, untouched IV)
		if level >= 3 {
			g.stmt(level) // avoid deep loop nests
			return
		}
		iv := g.fresh("i")
		trip := 1 + g.rng.Intn(g.cfg.MaxTrip)
		fmt.Fprintf(&g.sb, "%sint %s;\n", ind, iv)
		fmt.Fprintf(&g.sb, "%sfor (%s = 0; %s < %d; %s++) {\n", ind, iv, iv, trip, iv)
		g.scope = append(g.scope, iv)
		g.loopVars[iv] = true
		g.block(level+1, g.cfg.MaxStmts/2+1)
		g.loopVars[iv] = false
		fmt.Fprintf(&g.sb, "%s}\n", ind)
	default: // call an earlier helper for its side effects
		if len(g.funcs) == 0 {
			g.stmt(level)
			return
		}
		fn := g.funcs[g.rng.Intn(len(g.funcs))]
		var args []string
		for a := 0; a < g.fnArity[fn]; a++ {
			args = append(args, g.expr(2))
		}
		v := g.fresh("c")
		fmt.Fprintf(&g.sb, "%sint %s = %s(%s);\n", ind, v, fn, strings.Join(args, ", "))
		g.scope = append(g.scope, v)
	}
}

func (g *gen) pickAssignable() string {
	var cands []string
	for _, v := range g.scope {
		if !g.loopVars[v] {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[g.rng.Intn(len(cands))]
}

// expr produces an expression of bounded depth. Division is guarded so it
// can never trap; shifts rely on the IR's 5-bit masking semantics
// (matching the interpreter and the hardware).
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		return g.leaf()
	}
	switch g.rng.Intn(12) {
	case 0:
		ops := []string{"+", "-", "*", "&", "|", "^"}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(len(ops))], g.expr(depth-1))
	case 1:
		// Shift by a small masked amount.
		op := []string{"<<", ">>"}[g.rng.Intn(2)]
		return fmt.Sprintf("(%s %s ((%s) & 15))", g.expr(depth-1), op, g.leaf())
	case 2:
		cmp := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), cmp, g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s ? %s : %s)", g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 4:
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		return fmt.Sprintf("%s[(%s) & %d]", a, g.expr(depth-1), g.arrSize[a]-1)
	case 5:
		if g.cfg.NoDiv {
			return g.expr(depth - 1)
		}
		op := []string{"/", "%"}[g.rng.Intn(2)]
		// abs() keeps the divisor positive and the +1 keeps it non-zero.
		return fmt.Sprintf("(%s %s (abs(%s & 31) + 1))", g.expr(depth-1), op, g.leaf())
	case 6:
		fn := []string{"min", "max"}[g.rng.Intn(2)]
		return fmt.Sprintf("%s(%s, %s)", fn, g.expr(depth-1), g.expr(depth-1))
	case 7:
		return fmt.Sprintf("abs(%s)", g.expr(depth-1))
	case 8:
		return fmt.Sprintf("lshr(%s, (%s) & 15)", g.expr(depth-1), g.leaf())
	case 9:
		// The space avoids "- -x" lexing as the "--" token.
		u := []string{"-", "~", "!"}[g.rng.Intn(3)]
		return fmt.Sprintf("(%s %s)", u, g.expr(depth-1))
	case 10:
		ops := []string{"&&", "||"}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(2)], g.expr(depth-1))
	default:
		return g.leaf()
	}
}

func (g *gen) leaf() string {
	if len(g.scope) > 0 && g.rng.Intn(3) != 0 {
		return g.scope[g.rng.Intn(len(g.scope))]
	}
	return fmt.Sprintf("%d", g.rng.Intn(2001)-1000)
}
