package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"isex/internal/dfg"
	"isex/internal/ir"
)

// Selected is one chosen custom instruction.
type Selected struct {
	Fn    *ir.Function
	Block *ir.Block
	// InstrIndexes are the block instruction positions collapsed into the
	// instruction — the stable currency shared with the IR patcher.
	InstrIndexes []int
	Est          Estimate
	// CutHash is the canonical digest of the cut's induced datapath
	// (dfg.CutCanonHash): two selections with equal non-zero hashes
	// compute the same function and could share one hardware
	// implementation. Zero when Config.Dedup is off.
	CutHash dfg.CanonDigest
	// ChosenAt is the greedy iteration (0-based) at which the iterative
	// drivers picked this instruction — the key to Ninstr prefix sharing:
	// because the greedy outer loop is identical at every budget, the
	// instructions with ChosenAt < k of an ninstr = N run are bit-identical
	// to a full ninstr = k run, for every k ≤ N. The optimal drivers
	// revise earlier picks when a block's M-cut assignment changes, so
	// they report -1 (no prefix property).
	ChosenAt int
}

// SharedInstruction is a group of at least two selected instructions
// whose datapaths canonicalize identically — candidates for a single
// shared hardware implementation. Members indexes into
// SelectionResult.Instructions; Blocks lists the owning "fn/block"
// names in the same order.
type SharedInstruction struct {
	Hash    string
	Count   int
	Members []int
	Blocks  []string
}

// SelectionResult is the outcome of a program-wide selection (Problem 2).
type SelectionResult struct {
	Instructions []Selected
	TotalMerit   int64
	Stats        Stats
	// IdentCalls counts invocations of the identification algorithm the
	// selection *consumed* — the §6.2 currency: the optimal algorithm is
	// proven to need at most Ninstr + Nbb − 1 of them. Speculative work
	// by the scheduler (Config.Speculate) is never charged here.
	IdentCalls int
	// SpeculativeCalls counts identifications the scheduler launched
	// speculatively on idle workers (Config.Speculate); CacheHits counts
	// how many of the IdentCalls were served by such a speculation
	// instead of a fresh demand search. Both are 0 without Speculate.
	SpeculativeCalls int
	CacheHits        int
	// DedupHits counts identifications served by the cross-block dedup
	// memo (Config.Dedup): an isomorphic block had already been searched
	// and its cuts were translated, revalidated and adopted. Dedup hits
	// are charged here instead of IdentCalls and consume no search work.
	DedupHits int
	// SharedInstructions groups selected instructions whose datapaths
	// canonicalize identically (only populated with Config.Dedup; groups
	// appear in first-selected order).
	SharedInstructions []SharedInstruction
	// Blocks reports, per basic block, how its search ended (sorted by
	// function name, then block name). Blocks searched to completion are
	// listed with Status Exhaustive.
	Blocks []BlockStatus
	// Status is the worst per-block status: Exhaustive means every search
	// ran to completion and the result is exact under the configured
	// algorithm; anything else means the result is a sound lower bound.
	Status SearchStatus
	// FirstPanic is the first recovered panic across the per-block
	// searches (message plus a truncated stack excerpt), in the sorted
	// block order; empty when nothing panicked. The selection survives
	// recovered panics — this surfaces what was survived.
	FirstPanic string
}

// Degraded reports whether any per-block search ended early (budget,
// deadline, cancellation, or a recovered failure); the result is then a
// best-effort lower bound rather than the algorithm's exact answer.
func (r *SelectionResult) Degraded() bool { return r.Status != Exhaustive }

// finalize sorts the per-block statuses deterministically and derives the
// aggregate Status.
func (r *SelectionResult) finalize() {
	sort.SliceStable(r.Blocks, func(i, j int) bool {
		if r.Blocks[i].Fn != r.Blocks[j].Fn {
			return r.Blocks[i].Fn < r.Blocks[j].Fn
		}
		return r.Blocks[i].Block < r.Blocks[j].Block
	})
	r.Status = Exhaustive
	for _, b := range r.Blocks {
		r.Status = worse(r.Status, b.Status)
		if r.FirstPanic == "" && b.Err != nil {
			r.FirstPanic = b.Err.Error()
		}
	}
	r.computeShared()
}

// computeShared groups the selected instructions by non-zero CutHash
// (first-selected order) and records every group of two or more as a
// SharedInstruction. Must run after the instructions are sorted —
// Members are indexes into the final Instructions slice.
func (r *SelectionResult) computeShared() {
	r.SharedInstructions = nil
	groups := make(map[dfg.CanonDigest][]int)
	var order []dfg.CanonDigest
	for i, s := range r.Instructions {
		if s.CutHash.IsZero() {
			continue
		}
		if _, ok := groups[s.CutHash]; !ok {
			order = append(order, s.CutHash)
		}
		groups[s.CutHash] = append(groups[s.CutHash], i)
	}
	for _, h := range order {
		ms := groups[h]
		if len(ms) < 2 {
			continue
		}
		si := SharedInstruction{Hash: h.String(), Count: len(ms), Members: ms}
		for _, m := range ms {
			si.Blocks = append(si.Blocks,
				r.Instructions[m].Fn.Name+"/"+r.Instructions[m].Block.Name)
		}
		r.SharedInstructions = append(r.SharedInstructions, si)
	}
}

// instrIndexesOf maps a cut to block instruction positions, expanding
// collapsed super-nodes.
func instrIndexesOf(g *dfg.Graph, c dfg.Cut) []int {
	var out []int
	for _, id := range c {
		n := &g.Nodes[id]
		if len(n.SuperMembers) > 0 {
			out = append(out, n.SuperMembers...)
			continue
		}
		if n.InstrIndex >= 0 {
			out = append(out, n.InstrIndex)
		}
	}
	sort.Ints(out)
	return out
}

// blockGraphs pairs every block with its graph, in deterministic order.
type blockGraph struct {
	fn *ir.Function
	b  *ir.Block
	g  *dfg.Graph
}

// allBlockGraphs builds every block's graph. A block whose graph cannot
// be constructed (malformed IR) is excluded and reported as a Recovered
// status instead of crashing the selection.
func allBlockGraphs(m *ir.Module) ([]blockGraph, []BlockStatus) {
	var out []blockGraph
	var failed []BlockStatus
	for _, f := range m.Funcs {
		li := ir.Liveness(f)
		for _, b := range f.Blocks {
			g, err := dfg.Build(f, b, li)
			if err != nil {
				failed = append(failed, BlockStatus{
					Fn: f.Name, Block: b.Name, Status: Recovered, Err: err,
				})
				continue
			}
			out = append(out, blockGraph{fn: f, b: b, g: g})
		}
	}
	return out, failed
}

// SelectOptimal solves Problem 2 with the optimal selection algorithm of
// §6.2: single-cut identification on every block first, then, at each
// iteration, multiple-cut identification with an incremented M on the
// block that won the previous iteration, until ninstr cuts are chosen or
// no block offers a positive improvement.
func SelectOptimal(m *ir.Module, ninstr int, cfg Config) SelectionResult {
	return SelectOptimalCtx(context.Background(), m, ninstr, cfg)
}

// SelectOptimalCtx is SelectOptimal under a context: identification runs
// poll ctx and stop at its deadline, tripped blocks are rescued with the
// §9 windowed heuristic, per-block workers are panic-safe, and the best
// selection assembled so far is always returned (see SelectionResult's
// Blocks/Status for how trustworthy each block's answer is).
func SelectOptimalCtx(ctx context.Context, m *ir.Module, ninstr int, cfg Config) (res SelectionResult) {
	defer guardDriver(cfg.Probe, &res)
	// One stage span per driver invocation: every block search below —
	// demand or speculative — links to it as its parent.
	cfg.Probe = cfg.Probe.BeginStage("select/optimal", ninstr)
	defer func() {
		cfg.Probe.EndStage("select/optimal", len(res.Instructions), res.TotalMerit, res.IdentCalls)
	}()
	if cfg.Speculate {
		return selectOptimalScheduled(ctx, m, ninstr, cfg)
	}
	bgs, failed := allBlockGraphs(m)
	res = SelectionResult{Blocks: failed}
	if ninstr < 1 || len(bgs) == 0 {
		res.finalize()
		return res
	}
	// Per block: best total merit with M cuts, and the cuts themselves.
	type blockState struct {
		m       int   // cuts currently attributed to this block
		gain    int64 // best[m+1] - best[m]
		totals  []int64
		results []MultiResult
	}
	states := make([]blockState, len(bgs))
	blockStat := make([]BlockStatus, len(bgs))
	memo := newDedupMemo(cfg)
	hs := make([]dfg.CanonDigest, len(bgs))
	// identify serves block bi's M-cut identification, from the dedup
	// memo when an isomorphic block was already searched (charged to
	// DedupHits), from a fresh search otherwise (charged to IdentCalls
	// and stored for later twins).
	identify := func(bi, mm int) MultiResult {
		if r, bb, ok := memo.lookupMulti(bgs[bi].g, hs[bi], mm); ok {
			res.DedupHits++
			mergeBlockStatus(&blockStat[bi], bb)
			return r
		}
		res.IdentCalls++
		r, bs := searchBlockMultiSafe(ctx, bgs[bi].g, mm, cfg)
		res.Stats.add(r.Stats)
		mergeBlockStatus(&blockStat[bi], bs)
		memo.storeMulti(bgs[bi].g, hs[bi], mm, r, bs)
		return r
	}
	// The initial identification of every block is independent; with
	// Parallel set the blocks are searched concurrently, exactly like
	// SelectIterativeCtx's initial pass (deterministic: results land in
	// fixed slots and are merged in index order afterwards). Only dedup
	// leaders are searched — the plan is computed from the graphs up
	// front so the serial and parallel passes make identical decisions.
	if cfg.Parallel && len(bgs) > 1 {
		leader := dedupPlan(memo, hs, func(i int) *dfg.Graph { return bgs[i].g }, len(bgs))
		results := make([]MultiResult, len(bgs))
		stats := make([]BlockStatus, len(bgs))
		var wg sync.WaitGroup
		for i := range bgs {
			if leader[i] != i {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], stats[i] = searchBlockMultiSafe(ctx, bgs[i].g, 1, cfg)
			}(i)
		}
		wg.Wait()
		for i := range bgs {
			blockStat[i] = BlockStatus{Fn: bgs[i].fn.Name, Block: bgs[i].b.Name}
			var r MultiResult
			if leader[i] == i {
				res.IdentCalls++
				res.Stats.add(results[i].Stats)
				mergeBlockStatus(&blockStat[i], stats[i])
				memo.storeMulti(bgs[i].g, hs[i], 1, results[i], stats[i])
				r = results[i]
			} else {
				// Followers adopt their leader's identification; when the
				// leader's result is not adoptable (non-exhaustive, or the
				// translation was refused) the block searches itself.
				r = identify(i, 1)
			}
			states[i].totals = []int64{0, r.TotalMerit}
			states[i].results = []MultiResult{{}, r}
			states[i].gain = r.TotalMerit
		}
	} else {
		if memo.enabled() {
			for i := range bgs {
				hs[i] = memo.hash(bgs[i].g)
			}
		}
		for i := range bgs {
			blockStat[i] = BlockStatus{Fn: bgs[i].fn.Name, Block: bgs[i].b.Name}
			r := identify(i, 1)
			states[i].totals = []int64{0, r.TotalMerit}
			states[i].results = []MultiResult{{}, r}
			states[i].gain = r.TotalMerit
		}
	}
	chosen := 0
	for chosen < ninstr {
		bestB, bestGain := -1, int64(0)
		for i := range states {
			if states[i].gain > bestGain {
				bestGain = states[i].gain
				bestB = i
			}
		}
		if bestB < 0 {
			break // no positive improvement anywhere
		}
		st := &states[bestB]
		st.m++
		chosen++
		if chosen >= ninstr {
			break
		}
		// Out of time: keep the assignments found so far and stop
		// re-identifying; the chosen block simply offers no further
		// improvement.
		if err := ctx.Err(); err != nil {
			blockStat[bestB].Status = worse(blockStat[bestB].Status, statusOfCtx(err))
			st.gain = 0
			continue
		}
		// Identify with M+1 cuts on the block just chosen and refresh its
		// improvement value.
		r := identify(bestB, st.m+1)
		st.totals = append(st.totals, r.TotalMerit)
		st.results = append(st.results, r)
		st.gain = r.TotalMerit - st.totals[st.m]
		if st.gain < 0 {
			st.gain = 0
		}
	}
	// Materialize: for each block, its best M-cut assignment.
	for i := range states {
		st := &states[i]
		if st.m == 0 {
			continue
		}
		r := st.results[st.m]
		for j, c := range r.Cuts {
			sel := Selected{
				Fn:           bgs[i].fn,
				Block:        bgs[i].b,
				InstrIndexes: instrIndexesOf(bgs[i].g, c),
				Est:          r.Ests[j],
				ChosenAt:     -1,
			}
			if memo.enabled() {
				sel.CutHash = bgs[i].g.CutCanonHash(c)
			}
			res.Instructions = append(res.Instructions, sel)
			res.TotalMerit += r.Ests[j].Merit
		}
	}
	sortSelected(res.Instructions)
	res.Blocks = append(res.Blocks, blockStat...)
	res.finalize()
	return res
}

// SelectIterative solves Problem 2 with the heuristic of §6.3: repeated
// single-cut identification; each identified cut is collapsed into a
// forbidden super-node before the block is searched again. Across blocks
// it greedily takes the largest current improvement, exactly like the
// optimal algorithm's outer loop.
func SelectIterative(m *ir.Module, ninstr int, cfg Config) SelectionResult {
	return SelectIterativeCtx(context.Background(), m, ninstr, cfg)
}

// SelectIterativeCtx is SelectIterative under a context: identification
// runs poll ctx and stop at its deadline, a budget- or deadline-stopped
// exact search is rescued with the §9 windowed heuristic (keeping the
// better sound answer), and every block worker — parallel or serial — is
// panic-safe: a panicking block is reported as Recovered and the other
// blocks' selections survive.
func SelectIterativeCtx(ctx context.Context, m *ir.Module, ninstr int, cfg Config) (res SelectionResult) {
	defer guardDriver(cfg.Probe, &res)
	// One stage span per driver invocation, as in SelectOptimalCtx.
	cfg.Probe = cfg.Probe.BeginStage("select/iterative", ninstr)
	defer func() {
		cfg.Probe.EndStage("select/iterative", len(res.Instructions), res.TotalMerit, res.IdentCalls)
	}()
	if cfg.Speculate {
		return selectIterativeScheduled(ctx, m, ninstr, cfg)
	}
	bgs, failed := allBlockGraphs(m)
	res = SelectionResult{Blocks: failed}
	if ninstr < 1 || len(bgs) == 0 {
		res.finalize()
		return res
	}
	type blockState struct {
		g    *dfg.Graph
		best Result
	}
	states := make([]blockState, len(bgs))
	blockStat := make([]BlockStatus, len(bgs))
	memo := newDedupMemo(cfg)
	hs := make([]dfg.CanonDigest, len(bgs))
	// identify serves block i's single-cut identification on graph g,
	// from the dedup memo when an isomorphic graph was already searched
	// (DedupHits), from a fresh search otherwise (IdentCalls + store).
	identify := func(i int, g *dfg.Graph, h dfg.CanonDigest) (Result, BlockStatus) {
		if r, bb, ok := memo.lookupSingle(g, h); ok {
			res.DedupHits++
			return r, bb
		}
		r, bs := searchBlockSafe(ctx, g, cfg)
		res.IdentCalls++
		res.Stats.add(r.Stats)
		memo.storeSingle(g, h, r, bs)
		return r, bs
	}
	// The initial identification of every block is independent; with
	// Parallel set the blocks are searched concurrently (deterministic:
	// results land in fixed slots, and the stats are merged afterwards).
	// Only dedup leaders are searched — the plan is computed from the
	// graphs up front so the serial and parallel passes make identical
	// decisions.
	if cfg.Parallel && len(bgs) > 1 {
		for i := range bgs {
			states[i].g = bgs[i].g
		}
		leader := dedupPlan(memo, hs, func(i int) *dfg.Graph { return bgs[i].g }, len(bgs))
		results := make([]Result, len(bgs))
		stats := make([]BlockStatus, len(bgs))
		// Leaders consult the memo before searching — a no-op for a
		// private memo (necessarily empty here) but a real hit when a
		// shared DedupCache already holds a twin from another selection
		// call; this mirrors the serial path, whose identify() is
		// lookup-first.
		adopted := make([]bool, len(bgs))
		var wg sync.WaitGroup
		for i := range bgs {
			if leader[i] != i {
				continue
			}
			if r, bb, ok := memo.lookupSingle(bgs[i].g, hs[i]); ok {
				adopted[i], results[i], stats[i] = true, r, bb
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], stats[i] = searchBlockSafe(ctx, states[i].g, cfg)
			}(i)
		}
		wg.Wait()
		for i := range bgs {
			if leader[i] == i {
				if adopted[i] {
					res.DedupHits++
					states[i].best = results[i]
					blockStat[i] = stats[i]
					continue
				}
				res.IdentCalls++
				res.Stats.add(results[i].Stats)
				states[i].best = results[i]
				blockStat[i] = stats[i]
				memo.storeSingle(states[i].g, hs[i], results[i], stats[i])
				continue
			}
			// Followers adopt their leader's identification; when the
			// leader's result is not adoptable (non-exhaustive, or the
			// translation was refused) the block searches itself.
			states[i].best, blockStat[i] = identify(i, states[i].g, hs[i])
		}
	} else {
		if memo.enabled() {
			for i := range bgs {
				hs[i] = memo.hash(bgs[i].g)
			}
		}
		for i := range bgs {
			states[i].g = bgs[i].g
			states[i].best, blockStat[i] = identify(i, states[i].g, hs[i])
		}
	}
	for chosen := 0; chosen < ninstr; chosen++ {
		bestB := -1
		var bestMerit int64
		for i := range states {
			if states[i].best.Found && states[i].best.Est.Merit > bestMerit {
				bestMerit = states[i].best.Est.Merit
				bestB = i
			}
		}
		if bestB < 0 {
			break
		}
		st := &states[bestB]
		sel := Selected{
			Fn:           bgs[bestB].fn,
			Block:        bgs[bestB].b,
			InstrIndexes: instrIndexesOf(st.g, st.best.Cut),
			Est:          st.best.Est,
			ChosenAt:     chosen,
		}
		if memo.enabled() {
			sel.CutHash = st.g.CutCanonHash(st.best.Cut)
		}
		res.Instructions = append(res.Instructions, sel)
		res.TotalMerit += st.best.Est.Merit
		// Collapse the chosen cut and re-identify on this block only.
		name := fmt.Sprintf("ise_%s_%d", bgs[bestB].b.Name, chosen)
		ng, err := st.g.Collapse(st.best.Cut, name, st.best.Est.HWCycles)
		if err != nil {
			// The collapsed graph is unusable; the block keeps its chosen
			// cuts but contributes no further ones.
			mergeBlockStatus(&blockStat[bestB], BlockStatus{Status: Recovered, Err: err})
			st.best = Result{}
			continue
		}
		cfg.Probe.Collapse(name, chosen, len(st.best.Cut))
		st.g = ng
		// Out of time: keep harvesting the bests already identified on
		// other blocks, but do not start new searches.
		if cerr := ctx.Err(); cerr != nil {
			blockStat[bestB].Status = worse(blockStat[bestB].Status, statusOfCtx(cerr))
			st.best = Result{}
			continue
		}
		r, bs := identify(bestB, st.g, memo.hash(st.g))
		st.best = r
		mergeBlockStatus(&blockStat[bestB], bs)
	}
	sortSelected(res.Instructions)
	res.Blocks = append(res.Blocks, blockStat...)
	res.finalize()
	return res
}

// sortSelected orders instructions deterministically: by function name,
// block index, then first collapsed instruction.
func sortSelected(sel []Selected) {
	sort.SliceStable(sel, func(i, j int) bool {
		a, b := sel[i], sel[j]
		if a.Fn.Name != b.Fn.Name {
			return a.Fn.Name < b.Fn.Name
		}
		if a.Block.Index != b.Block.Index {
			return a.Block.Index < b.Block.Index
		}
		ai, bi := -1, -1
		if len(a.InstrIndexes) > 0 {
			ai = a.InstrIndexes[0]
		}
		if len(b.InstrIndexes) > 0 {
			bi = b.InstrIndexes[0]
		}
		return ai < bi
	})
}
