package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"isex/internal/core"
	"isex/internal/dfg"
	"isex/internal/obs"
	"isex/internal/workload"
)

// This file measures what the telemetry subsystem costs the exact search
// — the one number the whole design hinges on. Three configurations run
// on the hottest real benchmark blocks:
//
//   - probe off (twice): the production fast path, measured twice so the
//     report carries its own A/A noise floor. The nil-probe overhead
//     claim is honest only relative to that floor.
//   - metrics only: atomic counters on, flight recorder off — the
//     configuration a long-running service would leave enabled.
//   - full tracing: metrics plus per-worker flight-recorder rings.
//
// The isebench command writes the report to BENCH_PR5.json; CI
// regenerates it per change so the overhead trajectory is tracked like
// the kernel and engine benches before it.

// ObsBenchEntry is one measured (block, probe mode) configuration.
type ObsBenchEntry struct {
	Block string `json:"block"`
	// Mode is "off-a"/"off-b" (nil probe, measured twice), "metrics"
	// (registry only) or "trace" (registry + flight recorder).
	Mode    string  `json:"mode"`
	NsPerOp float64 `json:"ns_per_op"`
	// CutsConsidered, Merit, Status and Aborted certify that every mode
	// ran the identical search to the same exact end.
	CutsConsidered int64  `json:"cuts_considered"`
	Merit          int64  `json:"merit"`
	Status         string `json:"status"`
	Aborted        bool   `json:"aborted"`
	// Events is the flight-recorder timeline length ("trace" mode only).
	Events int `json:"events,omitempty"`
	// OverheadPct is the ns/op delta vs the block's "off-a" baseline in
	// percent (negative = measured faster; the off-b row shows the run's
	// noise floor).
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsBenchReport is the BENCH_PR5.json payload.
type ObsBenchReport struct {
	Schema    string          `json:"schema"`
	Generated string          `json:"generated"`
	GoVersion string          `json:"go"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	NumCPU    int             `json:"num_cpu"`
	Nin       int             `json:"nin"`
	Nout      int             `json:"nout"`
	Entries   []ObsBenchEntry `json:"entries"`
}

// obsBenchKernels are the workloads swept: the hottest block of each. The
// g721 block is the largest exact search in the suite (the one ParBench
// measures); fir is a small block where fixed probe costs would loom
// largest relative to the search itself.
var obsBenchKernels = []string{"g721", "fir"}

// hottestBlockOf returns the largest operation graph among kernel's real
// blocks.
func hottestBlockOf(kernel string) (*dfg.Graph, string, error) {
	graphs, err := workload.RealBlockGraphs()
	if err != nil {
		return nil, "", err
	}
	var hot *workload.BlockInfo
	for i := range graphs {
		if graphs[i].Kernel != kernel {
			continue
		}
		if hot == nil || graphs[i].Graph.NumOps() > hot.Graph.NumOps() {
			hot = &graphs[i]
		}
	}
	if hot == nil {
		return nil, "", fmt.Errorf("experiments: no blocks found for kernel %q", kernel)
	}
	return hot.Graph, hot.Kernel + "/" + hot.Fn + "/" + hot.Block, nil
}

// ObsBench measures the telemetry overhead matrix and returns the report.
// It errors out if any mode changes the search outcome — the differential
// guarantee is part of what the report certifies.
func ObsBench() (*ObsBenchReport, error) {
	const nin, nout = 2, 1
	rep := &ObsBenchReport{
		Schema:    "isex-obs-bench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Nin:       nin,
		Nout:      nout,
	}
	for _, kernel := range obsBenchKernels {
		g, name, err := hottestBlockOf(kernel)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{Nin: nin, Nout: nout}
		measure := func(mode string, probe func() *obs.Probe) (ObsBenchEntry, error) {
			var res core.Result
			var p *obs.Probe
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c := cfg
					if probe != nil {
						p = probe()
						c.Probe = p
					}
					res = core.FindBestCut(g, c)
				}
			})
			e := ObsBenchEntry{
				Block:          name,
				Mode:           mode,
				NsPerOp:        float64(r.T.Nanoseconds()) / float64(r.N),
				CutsConsidered: res.Stats.CutsConsidered,
				Merit:          res.Est.Merit,
				Status:         res.Status.String(),
				Aborted:        res.Stats.Aborted,
			}
			if p != nil && p.Rec != nil {
				e.Events = len(p.Rec.Merge())
			}
			return e, nil
		}
		base, err := measure("off-a", nil)
		if err != nil {
			return nil, err
		}
		rep.Entries = append(rep.Entries, base)
		modes := []struct {
			name  string
			probe func() *obs.Probe
		}{
			{"off-b", nil},
			{"metrics", func() *obs.Probe {
				return &obs.Probe{Met: obs.NewMetrics(obs.NewRegistry())}
			}},
			{"trace", func() *obs.Probe {
				return &obs.Probe{
					Rec: obs.NewRecorder(obs.DefaultRingCap),
					Met: obs.NewMetrics(obs.NewRegistry()),
				}
			}},
		}
		for _, m := range modes {
			e, err := measure(m.name, m.probe)
			if err != nil {
				return nil, err
			}
			if e.Merit != base.Merit || e.CutsConsidered != base.CutsConsidered ||
				e.Status != base.Status {
				return nil, fmt.Errorf("experiments: %s %s diverged from baseline: merit %d cuts %d status %s (base %d/%d/%s)",
					name, m.name, e.Merit, e.CutsConsidered, e.Status,
					base.Merit, base.CutsConsidered, base.Status)
			}
			if base.NsPerOp > 0 {
				e.OverheadPct = (e.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep, nil
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *ObsBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ObsBenchTable renders the report for terminal output.
func ObsBenchTable(r *ObsBenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Telemetry overhead benchmark — Nin=%d Nout=%d, %s %s/%s, %d CPU\n\n",
		r.Nin, r.Nout, r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)
	fmt.Fprintf(&sb, "%-28s %-8s %12s %16s %8s %9s %8s\n",
		"block", "mode", "ms/op", "cuts considered", "merit", "overhead", "events")
	for _, e := range r.Entries {
		over := ""
		if e.Mode != "off-a" {
			over = fmt.Sprintf("%+.2f%%", e.OverheadPct)
		}
		events := ""
		if e.Events > 0 {
			events = fmt.Sprintf("%d", e.Events)
		}
		fmt.Fprintf(&sb, "%-28s %-8s %12.2f %16d %8d %9s %8s\n",
			e.Block, e.Mode, e.NsPerOp/1e6, e.CutsConsidered, e.Merit, over, events)
	}
	return sb.String()
}
