package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("x", 1)
	tb.AddRow("longer-name", 123456)
	tb.AddRow("pi", 3.14159)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, 3 rows.
	if len(lines) != 7 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" || !strings.HasPrefix(lines[1], "====") {
		t.Errorf("title malformed:\n%s", out)
	}
	// Columns align: "value" entries start at the same offset.
	h := strings.Index(lines[2], "value")
	r1 := strings.Index(lines[4], "1")
	if h != r1 {
		t.Errorf("misaligned columns: header at %d, row at %d\n%s", h, r1, out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float not formatted:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := &Table{Header: []string{"a"}}
	tb.AddRow("x", "extra", "cells")
	tb.AddRow("y")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "cells") {
		t.Errorf("ragged row dropped cells:\n%s", out)
	}
}

func TestTableNoHeader(t *testing.T) {
	tb := &Table{}
	tb.AddRow("only", "row")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Errorf("separator without header:\n%s", out)
	}
	if !strings.Contains(out, "only") {
		t.Errorf("row missing:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Title: "T", XLabel: "n", YLabel: "cuts"}
	s.Add(2, 3, "blockA")
	s.Add(100, 1e6, "blockB (budget)")
	out := s.String()
	for _, want := range []string{"T", "n", "cuts", "blockA", "blockB (budget)", "2", "1e+06"} {
		if !strings.Contains(out, want) {
			t.Errorf("series missing %q:\n%s", want, out)
		}
	}
	if len(s.Points) != 2 || s.Points[1].X != 100 {
		t.Errorf("points stored wrong: %+v", s.Points)
	}
}
