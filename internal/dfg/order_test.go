package dfg

import (
	"testing"

	"isex/internal/ir"
)

// buildMemBlock: load a; t = a+1; store [p] t; load b; u = b*2; ret u —
// with memory-order edges store→load2 and load1→store.
func buildMemBlock(t *testing.T) (*ir.Function, *Graph) {
	t.Helper()
	b := ir.NewBuilder("f", 1)
	p := b.Fn.Params[0]
	a := b.Load(p)                      // 0: reader
	t1 := b.Op(ir.OpAdd, a, b.Const(1)) // 1,2
	b.Store(p, t1)                      // 3: writer
	bb := b.Load(p)                     // 4: reader after writer
	u := b.Op(ir.OpMul, bb, b.Const(2)) // 5,6
	b.Ret(u)
	f := b.Finish()
	return f, mustBuild(t, f, f.Entry(), ir.Liveness(f))
}

func TestMemoryOrderEdges(t *testing.T) {
	_, g := buildMemBlock(t)
	var ld1, st, ld2 = -1, -1, -1
	for i := range g.Nodes {
		n := &g.Nodes[i]
		switch {
		case n.Op == ir.OpLoad && n.InstrIndex == 0:
			ld1 = n.ID
		case n.Op == ir.OpStore:
			st = n.ID
		case n.Op == ir.OpLoad && n.InstrIndex > 0:
			ld2 = n.ID
		}
	}
	if ld1 < 0 || st < 0 || ld2 < 0 {
		t.Fatal("nodes not found")
	}
	hasOrder := func(from, to int) bool {
		for _, s := range g.Nodes[from].OrderSuccs {
			if s == to {
				return true
			}
		}
		return false
	}
	if !hasOrder(ld1, st) {
		t.Error("missing read→write order edge")
	}
	if !hasOrder(st, ld2) {
		t.Error("missing write→read order edge")
	}
	if hasOrder(ld1, ld2) {
		t.Error("read→read order edge should not exist")
	}
	// Order edges must not contribute to IN/OUT.
	cut := Cut{ld1} // forbidden; but Inputs/Outputs are still well-defined
	if in := g.Inputs(cut); in != 1 {
		t.Errorf("load inputs = %d, want 1 (the address)", in)
	}
}

func TestConvexityThroughOrderEdges(t *testing.T) {
	// t1 = x+1 ; store [p] t1 ; v = load p ; t2 = v*x
	// Cut {t1, t2}: the only connection is t1 →(data) store →(order)
	// load →(data) t2 — still a path, so the cut must be non-convex.
	b := ir.NewBuilder("f", 2)
	p, x := b.Fn.Params[0], b.Fn.Params[1]
	t1 := b.Op(ir.OpAdd, x, b.Const(1))
	b.Store(p, t1)
	v := b.Load(p)
	t2 := b.Op(ir.OpMul, v, x)
	b.Ret(t2)
	f := b.Finish()
	g := mustBuild(t, f, f.Entry(), ir.Liveness(f))
	var n1, n2 = -1, -1
	for i := range g.Nodes {
		switch g.Nodes[i].Op {
		case ir.OpAdd:
			n1 = g.Nodes[i].ID
		case ir.OpMul:
			n2 = g.Nodes[i].ID
		}
	}
	if g.Convex(Cut{n1, n2}) {
		t.Error("cut straddling a store→load chain must be non-convex")
	}
	if !g.Convex(Cut{n1}) || !g.Convex(Cut{n2}) {
		t.Error("singletons must be convex")
	}
}

func TestStoreBarriersBetweenWriters(t *testing.T) {
	b := ir.NewBuilder("f", 2)
	p, x := b.Fn.Params[0], b.Fn.Params[1]
	b.Store(p, x) // writer 1
	b.Store(p, x) // writer 2: must be ordered after writer 1
	b.RetVoid()
	f := b.Finish()
	g := mustBuild(t, f, f.Entry(), ir.Liveness(f))
	var s1, s2 = -1, -1
	for i := range g.Nodes {
		if g.Nodes[i].Op == ir.OpStore {
			if s1 < 0 {
				s1 = g.Nodes[i].ID
			} else {
				s2 = g.Nodes[i].ID
			}
		}
	}
	found := false
	for _, s := range g.Nodes[s1].OrderSuccs {
		if s == s2 {
			found = true
		}
	}
	// Build assigns IDs in instruction order, so s1 is the first store.
	if !found {
		t.Error("missing write→write order edge")
	}
}

func TestCallOrdersWithMemory(t *testing.T) {
	// load ; call ; load — the call is both reader and writer.
	b := ir.NewBuilder("f", 1)
	p := b.Fn.Params[0]
	a := b.Load(p)
	b.Call("g", nil, a)
	c := b.Load(p)
	b.Ret(c)
	f := b.Finish()
	// Module with callee so nothing else fails later.
	g := mustBuild(t, f, f.Entry(), ir.Liveness(f))
	var ld1, call, ld2 = -1, -1, -1
	for i := range g.Nodes {
		switch {
		case g.Nodes[i].Op == ir.OpLoad && ld1 < 0:
			ld1 = g.Nodes[i].ID
		case g.Nodes[i].Op == ir.OpCall:
			call = g.Nodes[i].ID
		case g.Nodes[i].Op == ir.OpLoad:
			ld2 = g.Nodes[i].ID
		}
	}
	has := func(from, to int) bool {
		for _, s := range g.Nodes[from].OrderSuccs {
			if s == to {
				return true
			}
		}
		return false
	}
	if !has(ld1, call) || !has(call, ld2) {
		t.Error("call not ordered against surrounding memory operations")
	}
}

func TestCollapsePreservesOrderEdges(t *testing.T) {
	_, g := buildMemBlock(t)
	// Collapse the add (a pure node) and check order edges survive on the
	// rest of the graph.
	var add int = -1
	for i := range g.Nodes {
		if g.Nodes[i].Op == ir.OpAdd {
			add = g.Nodes[i].ID
		}
	}
	ng := mustCollapse(t, g, Cut{add}, "super", 1)
	orderEdges := 0
	for i := range ng.Nodes {
		orderEdges += len(ng.Nodes[i].OrderSuccs)
	}
	if orderEdges != 2 {
		t.Errorf("order edges after collapse = %d, want 2", orderEdges)
	}
}
