package workload

// The IMA ADPCM coder of MediaBench (adpcm/rawcaudio, rawdaudio) —
// transliterated from Jack Jansen's classic adpcm.c. Differences from the
// C original: nibbles are stored one per word instead of packed two per
// byte (the packing loop contributes nothing to the hot dataflow), and
// the coder state lives in globals. The decoder's hottest block after
// if-conversion is the motivational example of Fig. 3: the vpdiff
// reconstruction (M1), the accumulate/saturate chain (M2) and the step
// update (M3).

const adpcmTables = `
int indexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8,
};

int stepsizeTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
};

int valprev = 0;
int index = 0;
`

const adpcmDecodeSource = adpcmTables + `
int deltas[1024];
int pcm[1024];

void adpcm_decoder(int len) {
    int valpred = valprev;
    int idx = index;
    int step = stepsizeTable[idx];
    int outp = 0;
    int i;
    for (i = 0; i < len; i++) {
        // Step 1 - get the delta value (one nibble per word here).
        int delta = deltas[i] & 15;

        // Step 2 - find new index value (for later).
        idx = idx + indexTable[delta];
        if (idx < 0) idx = 0;
        if (idx > 88) idx = 88;

        // Step 3 - separate sign and magnitude.
        int sign = delta & 8;
        int dmag = delta & 7;

        // Step 4 - compute difference and new predicted value.
        // Computes 'vpdiff = (delta+0.5)*step/4' with fixed shifts,
        // an approximate 16x4-bit multiplication (M1 of Fig. 3).
        int vpdiff = step >> 3;
        if (dmag & 4) vpdiff = vpdiff + step;
        if (dmag & 2) vpdiff = vpdiff + (step >> 1);
        if (dmag & 1) vpdiff = vpdiff + (step >> 2);

        if (sign) { valpred = valpred - vpdiff; }
        else      { valpred = valpred + vpdiff; }

        // Step 5 - clamp output value (the saturation of M2).
        if (valpred > 32767) valpred = 32767;
        if (valpred < -32768) valpred = -32768;

        // Step 6 - update step value (M3).
        step = stepsizeTable[idx];

        // Step 7 - output value.
        pcm[outp] = valpred;
        outp = outp + 1;
    }
    valprev = valpred;
    index = idx;
}
`

const adpcmEncodeSource = adpcmTables + `
int samples[1024];
int code[1024];

void adpcm_coder(int len) {
    int valpred = valprev;
    int idx = index;
    int step = stepsizeTable[idx];
    int outp = 0;
    int i;
    for (i = 0; i < len; i++) {
        int val = samples[i];

        // Step 1 - compute difference with previous value.
        int diff = val - valpred;
        int sign = 0;
        if (diff < 0) { sign = 8; diff = 0 - diff; }

        // Step 2 - divide and clamp: delta = diff*4/step computed with
        // shifts and compares only.
        int delta = 0;
        int vpdiff = step >> 3;
        int st = step;
        if (diff >= st) { delta = 4; diff = diff - st; vpdiff = vpdiff + st; }
        st = st >> 1;
        if (diff >= st) { delta = delta | 2; diff = diff - st; vpdiff = vpdiff + st; }
        st = st >> 1;
        if (diff >= st) { delta = delta | 1; vpdiff = vpdiff + st; }

        // Step 3 - update previous value.
        if (sign) { valpred = valpred - vpdiff; }
        else      { valpred = valpred + vpdiff; }

        // Step 4 - clamp previous value to 16 bits.
        if (valpred > 32767) valpred = 32767;
        if (valpred < -32768) valpred = -32768;

        // Step 5 - assemble value, update index and step.
        delta = delta | sign;
        idx = idx + indexTable[delta];
        if (idx < 0) idx = 0;
        if (idx > 88) idx = 88;
        step = stepsizeTable[idx];

        // Step 6 - output value (one nibble per word).
        code[outp] = delta;
        outp = outp + 1;
    }
    valprev = valpred;
    index = idx;
}
`

// adpcmLen is the number of samples/nibbles each driver run processes.
const adpcmLen = 1024

// AdpcmDecode is the adpcmdecode benchmark of Fig. 11 (and Fig. 3).
func AdpcmDecode() *Kernel {
	nib := testSignal(adpcmLen, 0xD, 0)
	// Deterministic nibble stream in [0,15].
	raw := testSignal(adpcmLen, 0xDEC0DE, 1<<30)
	for i := range nib {
		nib[i] = (raw[i] >> 5) & 15
	}
	return &Kernel{
		Name:    "adpcmdecode",
		Source:  adpcmDecodeSource,
		Entry:   "adpcm_decoder",
		Args:    []int32{adpcmLen},
		Inputs:  map[string][]int32{"deltas": nib},
		Outputs: []string{"pcm", "valprev", "index"},
	}
}

// AdpcmEncode is the adpcmencode benchmark of Fig. 11.
func AdpcmEncode() *Kernel {
	return &Kernel{
		Name:    "adpcmencode",
		Source:  adpcmEncodeSource,
		Entry:   "adpcm_coder",
		Args:    []int32{adpcmLen},
		Inputs:  map[string][]int32{"samples": testSignal(adpcmLen, 0xE2C, 30000)},
		Outputs: []string{"code", "valprev", "index"},
	}
}
