package minic

import (
	"strings"
	"testing"

	"isex/internal/interp"
	"isex/internal/ir"
)

func compile(t *testing.T, src string, opt Options) *ir.Module {
	t.Helper()
	m, err := Compile(src, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

// run compiles src and calls fn with args, returning the result.
func run(t *testing.T, src, fn string, args ...int32) int32 {
	t.Helper()
	m := compile(t, src, Options{})
	env := interp.NewEnv(m)
	ret, hasRet, err := env.Call(fn, args...)
	if err != nil {
		t.Fatalf("run %s: %v", fn, err)
	}
	if !hasRet {
		t.Fatalf("%s returned no value", fn)
	}
	return ret
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("x1 = 0x1F + 42; // comment\n/* multi\nline */ y <<= 'A';")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		texts = append(texts, tk.Text)
	}
	want := []string{"x1", "=", "0x1F", "+", "42", ";", "y", "<<=", "'A'", ";"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
	if toks[2].Val != 31 || toks[4].Val != 42 || toks[8].Val != 65 {
		t.Errorf("literal values wrong: %v", toks)
	}
}

func TestLexEscapes(t *testing.T) {
	toks, err := Lex(`'\n' '\t' '\0' '\\' '\''`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{'\n', '\t', 0, '\\', '\''}
	for i, w := range want {
		if toks[i].Val != w {
			t.Errorf("escape %d: got %d, want %d", i, toks[i].Val, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "0x", "123abc", "'ab'", "'"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 || toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("positions wrong: %+v", toks[:2])
	}
}

func TestArithmetic(t *testing.T) {
	src := `
int f(int a, int b) {
    return (a + b) * (a - b) / 2 + a % b;
}`
	if got := run(t, src, "f", 7, 3); got != (7+3)*(7-3)/2+7%3 {
		t.Errorf("f(7,3) = %d", got)
	}
}

func TestPrecedenceAndUnary(t *testing.T) {
	src := `
int f(int a, int b) {
    return a + b * 2 << 1 | 1;
}
int g(int x) { return -x + ~x + !x; }
int h(int x) { return +x; }`
	if got := run(t, src, "f", 1, 2); got != ((1+2*2)<<1)|1 {
		t.Errorf("f = %d", got)
	}
	if got := run(t, src, "g", 5); got != -5+^5+0 {
		t.Errorf("g(5) = %d", got)
	}
	if got := run(t, src, "g", 0); got != 0+^0+1 {
		t.Errorf("g(0) = %d", got)
	}
	if got := run(t, src, "h", -9); got != -9 {
		t.Errorf("h(-9) = %d", got)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	src := `
int f(int a, int b) {
    return (a < b) + 10*(a <= b) + 100*(a > b) + 1000*(a >= b)
         + 10000*(a == b) + 100000*(a != b);
}
int l(int a, int b) { return (a && b) + 2*(a || b); }`
	if got := run(t, src, "f", 2, 2); got != 0+10+0+1000+10000+0 {
		t.Errorf("f(2,2) = %d", got)
	}
	if got := run(t, src, "f", 1, 2); got != 1+10+0+0+0+100000 {
		t.Errorf("f(1,2) = %d", got)
	}
	if got := run(t, src, "l", 3, 0); got != 0+2 {
		t.Errorf("l(3,0) = %d", got)
	}
	if got := run(t, src, "l", 3, -1); got != 1+2 {
		t.Errorf("l(3,-1) = %d", got)
	}
	if got := run(t, src, "l", 0, 0); got != 0 {
		t.Errorf("l(0,0) = %d", got)
	}
}

func TestTernaryAndIntrinsics(t *testing.T) {
	src := `
int clamp(int x, int lo, int hi) {
    return x < lo ? lo : (x > hi ? hi : x);
}
int m(int a, int b) { return min(a, b) + 10*max(a, b) + 100*abs(a - b); }`
	for _, c := range []struct{ x, want int32 }{{5, 5}, {-3, 0}, {99, 10}} {
		if got := run(t, src, "clamp", c.x, 0, 10); got != c.want {
			t.Errorf("clamp(%d) = %d, want %d", c.x, got, c.want)
		}
	}
	if got := run(t, src, "m", 7, 3); got != 3+70+400 {
		t.Errorf("m(7,3) = %d", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int fib(int n) {
    int a = 0;
    int b = 1;
    int i;
    for (i = 0; i < n; i++) {
        int t = a + b;
        a = b;
        b = t;
    }
    return a;
}
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3*n + 1; }
        steps++;
    }
    return steps;
}
int sumskip(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        i++;
        if (i % 3 == 0) continue;
        if (i > 10) break;
        s += i;
    }
    return s;
}`
	if got := run(t, src, "fib", 10); got != 55 {
		t.Errorf("fib(10) = %d", got)
	}
	if got := run(t, src, "collatz", 27); got != 111 {
		t.Errorf("collatz(27) = %d", got)
	}
	// 1+2+4+5+7+8+10 = 37
	if got := run(t, src, "sumskip", 100); got != 37 {
		t.Errorf("sumskip = %d", got)
	}
}

func TestArraysAndGlobals(t *testing.T) {
	src := `
int tab[5] = {10, 20, 30};
int acc = 7;

int sum(int n) {
    int s = acc;
    int i;
    for (i = 0; i < n; i++) s += tab[i];
    return s;
}
void setg(int v) { acc = v; tab[4] = v + 1; }
int getg() { return acc + tab[4]; }
int local(int n) {
    int buf[8];
    int i;
    for (i = 0; i < 8; i++) buf[i] = i * n;
    return buf[3] + buf[7];
}`
	m := compile(t, src, Options{})
	env := interp.NewEnv(m)
	got, _, err := env.Call("sum", 5)
	if err != nil || got != 7+10+20+30 {
		t.Errorf("sum = %d, %v", got, err)
	}
	if _, _, err := env.Call("setg", 100); err != nil {
		t.Fatal(err)
	}
	got, _, err = env.Call("getg")
	if err != nil || got != 100+101 {
		t.Errorf("getg = %d, %v", got, err)
	}
	got, _, err = env.Call("local", 2)
	if err != nil || got != 6+14 {
		t.Errorf("local = %d, %v", got, err)
	}
}

func TestArrayParamsAndCalls(t *testing.T) {
	src := `
int data[6] = {1, 2, 3, 4, 5, 6};

int sumrange(int a[], int lo, int hi) {
    int s = 0;
    int i;
    for (i = lo; i < hi; i++) s += a[i];
    return s;
}
int twice(int x) { return 2 * x; }
int top(int n) {
    int loc[4];
    loc[0] = 9; loc[1] = 8; loc[2] = 7; loc[3] = 6;
    return sumrange(data, 0, n) + sumrange(loc, 1, 3) + twice(n);
}`
	if got := run(t, src, "top", 4); got != (1+2+3+4)+(8+7)+8 {
		t.Errorf("top(4) = %d", got)
	}
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	src := `
int f(int x) {
    int a = x;
    a += 3; a -= 1; a *= 2; a /= 3; a %= 100;
    a <<= 2; a >>= 1; a &= 0xFF; a |= 0x100; a ^= 0x3;
    a++; a--;
    return a;
}
int arr(int x) {
    int b[2];
    b[0] = x;
    b[0] += 5;
    b[0] <<= 1;
    b[1] = 1;
    b[1]++;
    return b[0] + b[1];
}`
	var a int32 = 4
	a += 3
	a -= 1
	a *= 2
	a /= 3
	a %= 100
	a <<= 2
	a >>= 1
	a &= 0xFF
	a |= 0x100
	a ^= 0x3
	if got := run(t, src, "f", 4); got != a {
		t.Errorf("f(4) = %d, want %d", got, a)
	}
	if got := run(t, src, "arr", 3); got != 16+2 {
		t.Errorf("arr(3) = %d", got)
	}
}

func TestShiftAndHexSemantics(t *testing.T) {
	src := `
int f(int x) { return x >> 1; }            // arithmetic shift
int g(int x) { return (x & 0xFF) << 24; }
`
	if got := run(t, src, "f", -8); got != -4 {
		t.Errorf("f(-8) = %d", got)
	}
	if got := run(t, src, "g", 0x1FF); uint32(got) != uint32(0xFF)<<24 {
		t.Errorf("g = %d", got)
	}
}

func TestVoidFunctionFallthroughReturn(t *testing.T) {
	src := `
int g;
void set() { g = 5; }
int f() { set(); return g; }
int noret(int x) { if (x > 0) return 1; return 0; }
int implicit() { int a = 3; a = a; }  // falls off the end: returns 0
`
	if got := run(t, src, "f"); got != 5 {
		t.Errorf("f = %d", got)
	}
	if got := run(t, src, "noret", -1); got != 0 {
		t.Errorf("noret(-1) = %d", got)
	}
	if got := run(t, src, "implicit"); got != 0 {
		t.Errorf("implicit = %d", got)
	}
}

func TestRecursion(t *testing.T) {
	src := `
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}`
	if got := run(t, src, "fact", 6); got != 720 {
		t.Errorf("fact(6) = %d", got)
	}
}

func TestScoping(t *testing.T) {
	src := `
int f(int x) {
    int a = 1;
    {
        int a = 2;
        x += a;
    }
    return x + a;
}`
	if got := run(t, src, "f", 10); got != 13 {
		t.Errorf("f(10) = %d", got)
	}
}

func TestGlobalInitializers(t *testing.T) {
	src := `
int a = -5;
int b[3] = {1, -2, 3,};
int c[4];
int f() { return a + b[0] + b[1] + b[2] + c[3]; }`
	if got := run(t, src, "f"); got != -5+1-2+3+0 {
		t.Errorf("f = %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int f( { }",
		"int f() { return 1 }",
		"int f() { x = ; }",
		"int f() { if x { } }",
		"void 3() {}",
		"int g[0];",
		"int g[2] = 5;",
		"int g = {1,2};",
		"float f() {}",
		"int f() { for (;;) }",
		"int f() { a[1 = 2; }",
		"int f() { return (1 + ; }",
		"int f() {",
		"void v = 3;",
		"int f() { 1 + 2; }",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undeclared", "int f() { return x; }"},
		{"undeclared assign", "int f() { x = 1; return 0; }"},
		{"array as value", "int a[2]; int f() { return a; }"},
		{"scalar indexed", "int f(int x) { return x[0]; }"},
		{"assign to array", "int a[2]; int f() { a = 1; return 0; }"},
		{"break outside", "int f() { break; return 0; }"},
		{"continue outside", "int f() { continue; return 0; }"},
		{"void returns value", "void f() { return 1; }"},
		{"int returns nothing", "int f() { return; }"},
		{"call undefined", "int f() { return g(); }"},
		{"bad arity", "int g(int x) { return x; } int f() { return g(1, 2); }"},
		{"intrinsic arity", "int f() { return min(1); }"},
		{"redefine intrinsic", "int min(int a, int b) { return a; }"},
		{"dup function", "int f() { return 0; } int f() { return 1; }"},
		{"dup global", "int g; int g;"},
		{"func shadows global", "int f; int f() { return 0; }"},
		{"dup param", "int f(int a, int a) { return a; }"},
		{"dup local", "int f() { int a = 1; int a = 2; return a; }"},
		{"call in ternary", "int g() { return 1; } int f(int x) { return x ? g() : 2; }"},
		{"array arg for scalar", "int a[2]; int g(int x) { return x; } int f() { return g(a); }"},
		{"scalar arg for array", "int g(int x[]) { return x[0]; } int f(int y) { return g(y); }"},
		{"expr statement", "int g() { return 1; } int f() { int x = 0; x == 1; return x; }"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := Parse(c.src)
			if err != nil {
				return // some are also parse errors; fine
			}
			if err := Check(prog); err == nil {
				t.Errorf("Check(%q) should fail", c.src)
			}
		})
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Compile("int f() {\n  return x;\n}", Options{})
	if err == nil {
		t.Fatal("expected error")
	}
	fe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if fe.Line != 2 {
		t.Errorf("error line = %d, want 2", fe.Line)
	}
}

func TestUnrolling(t *testing.T) {
	src := `
int a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int f() {
    int s = 0;
    int i;
    for (i = 0; i < 8; i++) s += a[i];
    return s + i;
}`
	rolled := compile(t, src, Options{})
	unrolled := compile(t, src, Options{UnrollLimit: 16})
	// Unrolled version: function f must have fewer blocks (no loop).
	fr, fu := rolled.Func("f"), unrolled.Func("f")
	if len(fu.Blocks) >= len(fr.Blocks) {
		t.Errorf("unrolled blocks %d, rolled %d", len(fu.Blocks), len(fr.Blocks))
	}
	if len(fu.Blocks) != 1 {
		t.Errorf("fully unrolled f should be a single block, got %d", len(fu.Blocks))
	}
	for _, m := range []*ir.Module{rolled, unrolled} {
		env := interp.NewEnv(m)
		got, _, err := env.Call("f")
		if err != nil || got != 36+8 {
			t.Errorf("f = %d, %v", got, err)
		}
	}
}

func TestUnrollRejections(t *testing.T) {
	cases := []struct{ name, src string }{
		{"assigns iv", `int f() { int s=0; int i; for (i=0;i<4;i++) { i = i; s++; } return s; }`},
		{"break", `int f() { int s=0; int i; for (i=0;i<4;i++) { if (s>2) break; s++; } return s; }`},
		{"nonconst bound", `int f(int n) { int s=0; int i; for (i=0;i<n;i++) s++; return s; }`},
		{"too many trips", `int f() { int s=0; int i; for (i=0;i<1000;i++) s++; return s; }`},
		{"redeclares iv", `int f() { int s=0; int i; for (i=0;i<4;i++) { int i = 1; s += i; } return s; }`},
		{"zero step", `int f() { int s=0; int i; for (i=0;i<4;i+=0) { s++; if (s > 5) return s; } return s; }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := Compile(c.src, Options{UnrollLimit: 16})
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Func("f").Blocks) == 1 {
				t.Errorf("loop should not have been unrolled")
			}
		})
	}
}

func TestUnrollNested(t *testing.T) {
	src := `
int f() {
    int s = 0;
    int i;
    int j;
    for (i = 0; i < 3; i++) {
        for (j = 0; j < 4; j++) {
            s += i * 4 + j;
        }
    }
    return s;
}`
	m := compile(t, src, Options{UnrollLimit: 8})
	if n := len(m.Func("f").Blocks); n != 1 {
		t.Errorf("nested unroll should leave 1 block, got %d", n)
	}
	env := interp.NewEnv(m)
	got, _, err := env.Call("f")
	if err != nil || got != 66 {
		t.Errorf("f = %d, %v", got, err)
	}
}

func TestUnrollDownwardLoop(t *testing.T) {
	src := `
int f() {
    int s = 0;
    int i;
    for (i = 10; i > 0; i -= 2) s += i;
    return 100*s + i;
}`
	m := compile(t, src, Options{UnrollLimit: 16})
	if n := len(m.Func("f").Blocks); n != 1 {
		t.Errorf("downward unroll blocks = %d", n)
	}
	env := interp.NewEnv(m)
	got, _, err := env.Call("f")
	if err != nil || got != 100*(10+8+6+4+2)+0 {
		t.Errorf("f = %d, %v", got, err)
	}
}

func TestLoweredModuleVerifies(t *testing.T) {
	src := `
int t[4] = {1,2,3,4};
int helper(int a[], int n) { int s=0; int i; for (i=0;i<n;i++) s+=a[i]; return s; }
int f(int x) {
    int buf[4];
    int i;
    for (i = 0; i < 4; i++) buf[i] = t[i] * x;
    if (x > 0) return helper(buf, 4);
    return helper(t, 4) > 5 ? 1 : 0;
}`
	m := compile(t, src, Options{})
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(m)
	got, _, err := env.Call("f", 3)
	if err != nil || got != 30 {
		t.Errorf("f(3) = %d, %v", got, err)
	}
	got, _, err = env.Call("f", -1)
	if err != nil || got != 1 {
		t.Errorf("f(-1) = %d, %v", got, err)
	}
}

func TestLshrIntrinsic(t *testing.T) {
	src := `
int f(int x, int s) { return lshr(x, s); }
int g(int x) { return x ? lshr(x, 1) : min(x, 3); }  // intrinsics OK in ?: arms
`
	var minus8 int32 = -8
	if got := run(t, src, "f", -8, 1); uint32(got) != uint32(minus8)>>1 {
		t.Errorf("lshr(-8,1) = %d", got)
	}
	if got := run(t, src, "f", -1, 31); got != 1 {
		t.Errorf("lshr(-1,31) = %d", got)
	}
	if got := run(t, src, "g", 8); got != 4 {
		t.Errorf("g(8) = %d", got)
	}
	if got := run(t, src, "g", 0); got != 0 {
		t.Errorf("g(0) = %d", got)
	}
	// User calls in ?: arms remain rejected.
	bad := `int h(int x) { return x; } int f(int x) { return x ? h(x) : 1; }`
	if _, err := Compile(bad, Options{}); err == nil {
		t.Error("user call in ternary arm accepted")
	}
}
